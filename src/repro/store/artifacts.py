"""The two-tier content-addressed artifact store.

Tier 1 is an in-process LRU per stage (:class:`repro.store.lru.LruCache`
instances shared process-wide, so the signature cache keeps its historical
identity semantics).  Tier 2 is an optional on-disk tier: one ``.npz``
file per artifact under a root directory selected by ``REPRO_STORE`` (or
the CLI's ``--store``).  Without a root the store degrades to the memory
tier alone — the pre-store behaviour, bit for bit.

Keys are :class:`ArtifactKey` values — ``(stage, data fingerprint, config
fingerprint, schema version)``.  The disk layout shards by digest::

    <root>/<stage>/<digest[:2]>/<digest>.npz

Each file holds the codec's payload arrays plus a ``__meta__`` JSON header
recording the full key; a header that does not match the requesting key
(schema bump, hash collision across layouts) is rejected as *stale* and
the value recomputed.  Disk writes are atomic (temp file + ``os.replace``)
so parallel pool workers can write the same artifact concurrently; reads
never see a torn file, and any unreadable/corrupt file is treated as a
miss, counted under ``store.<stage>.corrupt``.

Store failures never fail a run: the disk tier is an accelerator, and
every exception on its path degrades to "compute it again".
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro import obs
from repro.store.codecs import get_codec
from repro.store.fingerprint import STORE_SCHEMA
from repro.store.lru import DEFAULT_MAXSIZE, LruCache

__all__ = [
    "STORE_ENV_VAR",
    "ArtifactKey",
    "ArtifactStore",
    "clear_memory_tiers",
    "default_store",
    "memory_tier",
]

#: Directory of the persistent disk tier; unset/empty = memory tier only.
STORE_ENV_VAR = "REPRO_STORE"


@dataclass(frozen=True)
class ArtifactKey:
    """Content address of one stage artifact."""

    stage: str
    data_fp: str
    config_fp: str
    schema: str = STORE_SCHEMA

    def digest(self) -> str:
        """Filename-safe digest of the full key."""
        payload = f"{self.schema}|{self.stage}|{self.data_fp}|{self.config_fp}"
        return hashlib.blake2b(payload.encode(), digest_size=20).hexdigest()


# Shared per-stage memory tiers.  Module-level so every ArtifactStore built
# for the same process (the default store is rebuilt when REPRO_STORE
# changes) keeps hitting the same LRUs, and so the signature cache module
# can expose its stage's tier as the historical SIGNATURE_CACHE singleton.
_MEMORY_TIERS: Dict[str, LruCache] = {}


def memory_tier(stage: str, maxsize: int = DEFAULT_MAXSIZE) -> LruCache:
    """The process-wide memory tier for ``stage`` (created on first use)."""
    tier = _MEMORY_TIERS.get(stage)
    if tier is None:
        tier = _MEMORY_TIERS.setdefault(stage, LruCache(maxsize=maxsize))
    return tier


def clear_memory_tiers() -> None:
    """Empty every stage's memory tier (benches/tests isolating the disk tier)."""
    for tier in _MEMORY_TIERS.values():
        tier.clear()


class ArtifactStore:
    """Two-tier get/put keyed by :class:`ArtifactKey`.

    Parameters
    ----------
    root:
        Disk-tier directory; ``None`` disables persistence (memory only).
    """

    def __init__(self, root: "Optional[str | os.PathLike]" = None) -> None:
        self.root = Path(root) if root else None

    @property
    def persistent(self) -> bool:
        """Whether a disk tier is configured."""
        return self.root is not None

    def memory_tier(self, stage: str) -> LruCache:
        return memory_tier(stage)

    # ----------------------------------------------------------------- paths
    def path_for(self, key: ArtifactKey) -> Optional[Path]:
        """Disk location of ``key``'s artifact (``None`` without a root)."""
        if self.root is None:
            return None
        digest = key.digest()
        return self.root / key.stage / digest[:2] / f"{digest}.npz"

    # ------------------------------------------------------------------- get
    def get(self, key: ArtifactKey, memory: bool = True) -> Optional[Any]:
        """Look ``key`` up: memory tier first (unless disabled), then disk.

        A disk hit is promoted into the memory tier when ``memory`` is on.
        Returns ``None`` on a miss — including stale-schema and corrupt
        files, which are counted but never raised.
        """
        if memory:
            hit = self.memory_tier(key.stage).get(key)
            if hit is not None:
                return hit
        value = self._read_disk(key)
        if value is not None and memory:
            self.memory_tier(key.stage).put(key, value)
        return value

    # ------------------------------------------------------------------- put
    def put(self, key: ArtifactKey, value: Any, memory: bool = True) -> None:
        """Install ``value`` under ``key`` in the enabled tiers."""
        if memory:
            self.memory_tier(key.stage).put(key, value)
        self._write_disk(key, value)

    # ------------------------------------------------------------------ disk
    def _read_disk(self, key: ArtifactKey) -> Optional[Any]:
        path = self.path_for(key)
        codec = get_codec(key.stage)
        if path is None or codec is None or not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as npz:
                header = json.loads(bytes(npz["__meta__"].tobytes()).decode())
                if (
                    header.get("schema") != key.schema
                    or header.get("stage") != key.stage
                    or header.get("data_fp") != key.data_fp
                    or header.get("config_fp") != key.config_fp
                ):
                    obs.inc(f"store.{key.stage}.stale")
                    return None
                arrays = {
                    name: npz[name] for name in npz.files if name != "__meta__"
                }
            value = codec.decode(arrays, header.get("meta"))
        except Exception:
            # Torn/truncated/foreign file: recompute rather than fail.
            obs.inc(f"store.{key.stage}.corrupt")
            return None
        obs.inc(f"store.{key.stage}.hit_disk")
        return value

    def _write_disk(self, key: ArtifactKey, value: Any) -> None:
        path = self.path_for(key)
        codec = get_codec(key.stage)
        if path is None or codec is None:
            return
        try:
            arrays, meta = codec.encode(value)
            header = {
                "schema": key.schema,
                "stage": key.stage,
                "data_fp": key.data_fp,
                "config_fp": key.config_fp,
                "meta": meta,
            }
            meta_array = np.frombuffer(
                json.dumps(header, allow_nan=True).encode(), dtype=np.uint8
            )
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".npz"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    np.savez(handle, __meta__=meta_array, **arrays)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except Exception:
            obs.inc(f"store.{key.stage}.write_errors")
            return
        obs.inc(f"store.{key.stage}.writes")


# The process default, rebuilt whenever the configured root changes (tests
# monkeypatch REPRO_STORE).  Memory tiers are module-global, so a rebuild
# never drops tier-1 entries.
_DEFAULT: Optional[ArtifactStore] = None


def default_store() -> ArtifactStore:
    """The store configured by ``REPRO_STORE`` (memory-only when unset)."""
    from repro.core.runtime import store_dir  # lazy: avoids a core import cycle

    root = store_dir()
    global _DEFAULT
    current = str(_DEFAULT.root) if _DEFAULT is not None and _DEFAULT.root else None
    if _DEFAULT is None or current != root:
        _DEFAULT = ArtifactStore(root)
    return _DEFAULT
