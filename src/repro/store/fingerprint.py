"""Content fingerprints for artifact addressing.

Every artifact the pipeline materializes is keyed by *what it was computed
from*: a data fingerprint (the exact float content of the input matrix) and
a config fingerprint (a canonical serialization of the governing
configuration object).  Two runs that would compute the same value produce
the same key; any change to either input produces a different one.

Both fingerprints use BLAKE2b — faster than sha1 on large buffers and with
a keyed/person-alizable construction we can use to domain-separate future
schema revisions.

``config_fingerprint`` canonicalizes before hashing: dataclasses become
``{field_name: value}`` mappings hashed under ``sort_keys=True``, so the
fingerprint is stable across dataclass *field order* (a refactor that
reorders fields must not invalidate a store full of artifacts).  Enums
hash by class and value, arrays by content, and unsupported types raise
instead of silently hashing an address-bearing ``repr``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

import numpy as np

__all__ = ["STORE_SCHEMA", "config_fingerprint", "data_fingerprint"]

#: Artifact schema version, stamped into every key and on-disk artifact.
#: Bump it whenever the serialized layout of *any* stage changes: old
#: artifacts are then rejected (recomputed), never misread.
STORE_SCHEMA = "repro.store/v1"

_DIGEST_SIZE = 20  # bytes; 160-bit fingerprints, same width as the old sha1


def data_fingerprint(data: np.ndarray) -> str:
    """Content hash of a numeric array (shape + raw float bytes)."""
    arr = np.ascontiguousarray(np.asarray(data, dtype=float))
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    digest.update(repr(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()


def _canonical(obj: Any) -> Any:
    """Reduce a config object to a JSON-able canonical form."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj  # json round-trips floats (incl. nan/inf) via repr
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "value": _canonical(obj.value)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__name__, "fields": fields}
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": data_fingerprint(obj)}
    if isinstance(obj, np.generic):
        return _canonical(obj.item())
    if isinstance(obj, dict):
        return {"__dict__": {str(k): _canonical(v) for k, v in obj.items()}}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    raise TypeError(
        f"cannot fingerprint config value of type {type(obj).__name__}: {obj!r}"
    )


def config_fingerprint(config: Any) -> str:
    """Canonical hash of a configuration object.

    Stable across dataclass field order (fields are serialized by name and
    hashed under ``sort_keys``), sensitive to class names, field values,
    enum members and array contents.  Raises :class:`TypeError` for types
    without a canonical form rather than hashing something unstable.
    """
    payload = json.dumps(_canonical(config), sort_keys=True, allow_nan=True)
    digest = hashlib.blake2b(payload.encode(), digest_size=_DIGEST_SIZE)
    return digest.hexdigest()
