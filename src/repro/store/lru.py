"""The in-process memory tier: a thread-safe bounded LRU with stats.

This is the store's tier 1.  It predates the store (it shipped as
``prediction.spatial.cache.SignatureSearchCache``) and keeps that exact
contract — bounded, thread-safe, hit/miss/eviction counters readable by
benches and tests — so the signature-cache module can re-export it
unchanged.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional

__all__ = ["DEFAULT_MAXSIZE", "CacheStats", "LruCache"]

#: Default number of cached entries per tier.  Stage artifacts held in
#: memory are small (index tuples, OLS coefficients, forecast matrices of a
#: few KB each), so this comfortably covers a large fleet sweep.
DEFAULT_MAXSIZE = 512


@dataclass
class CacheStats:
    """Hit/miss counters, readable by benches and tests."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class LruCache:
    """Thread-safe bounded LRU mapping hashable keys to values."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset counters (used between timed runs)."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()
