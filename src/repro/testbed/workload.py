"""Load generation for the MediaWiki testbed.

"The workload generator creates requests alternating between low and high
intensity periods, each lasting one hour."  :class:`AlternatingLoad`
reproduces that pattern at ticketing-window granularity with mild
multiplicative noise, so the simulated monitoring sees realistic variation
rather than a perfect square wave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.trace.workloads import alternating_load

__all__ = ["AlternatingLoad"]


@dataclass(frozen=True)
class AlternatingLoad:
    """Alternating low/high request rates for one application.

    Attributes
    ----------
    low_rps / high_rps:
        Request rates (requests/second) of the two phases.
    windows_per_phase:
        Phase length in ticketing windows (1 hour = 4 x 15-minute windows).
    noise:
        Multiplicative jitter (standard deviation as a fraction).
    start_low:
        Whether the experiment opens with the low phase.
    """

    low_rps: float
    high_rps: float
    windows_per_phase: int = 4
    noise: float = 0.04
    start_low: bool = True

    def __post_init__(self) -> None:
        if self.low_rps < 0 or self.high_rps < self.low_rps:
            raise ValueError("need 0 <= low_rps <= high_rps")
        if self.windows_per_phase < 1:
            raise ValueError("windows_per_phase must be >= 1")
        if self.noise < 0:
            raise ValueError("noise must be non-negative")

    @property
    def period_windows(self) -> int:
        """One full low+high cycle, in windows."""
        return 2 * self.windows_per_phase

    def rates(self, n_windows: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Return the offered request rate for each ticketing window."""
        base = alternating_load(
            n_windows,
            self.windows_per_phase,
            low=self.low_rps,
            high=self.high_rps,
            start_low=self.start_low,
        )
        if rng is None or self.noise == 0:
            return base
        jitter = rng.normal(1.0, self.noise, size=n_windows)
        return np.maximum(base * jitter, 0.0)
