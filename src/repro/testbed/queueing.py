"""Processor-sharing queueing primitives for the tier model.

Each tier VM is modelled as an M/G/1 processor-sharing station: a request
with service time ``s`` observed at utilization ``rho`` has expected
response time ``s / (1 - rho)``.  Utilization above a saturation cap means
the station cannot serve the offered rate — throughput is clipped and the
response time pinned at the saturated value (admission control at the load
balancer keeps the queue from growing without bound, which is how the real
testbed's frontend behaves).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SATURATION_RHO", "ps_response_time", "served_rate", "TierSample"]

#: Utilization beyond this counts as saturated.
SATURATION_RHO = 0.95


def ps_response_time(service_time: float, rho: float, rho_cap: float = SATURATION_RHO) -> float:
    """Expected PS response time at utilization ``rho``.

    ``rho`` is clipped into ``[0, rho_cap]`` — the saturated response time
    ``s / (1 - rho_cap)`` is the model's queueing ceiling.
    """
    if service_time < 0:
        raise ValueError("service_time must be non-negative")
    if not 0 < rho_cap < 1:
        raise ValueError("rho_cap must be in (0, 1)")
    effective = float(np.clip(rho, 0.0, rho_cap))
    return service_time / (1.0 - effective)


def served_rate(offered_rate: float, capacity_ghz: float, work_per_request: float,
                rho_cap: float = SATURATION_RHO) -> float:
    """Rate actually served by a station with a CPU capacity limit.

    Parameters
    ----------
    offered_rate:
        Arriving requests per second.
    capacity_ghz:
        Enforced CPU limit of the station (GHz).
    work_per_request:
        CPU work per request in GHz-seconds (cycles / 1e9).
    """
    if offered_rate < 0 or capacity_ghz < 0 or work_per_request <= 0:
        raise ValueError("rates and capacities must be non-negative, work positive")
    max_rate = rho_cap * capacity_ghz / work_per_request
    return float(min(offered_rate, max_rate))


@dataclass(frozen=True)
class TierSample:
    """One window's operating point of a tier station."""

    offered_rate: float
    served_rate: float
    demand_ghz: float
    rho: float
    response_time: float

    @property
    def saturated(self) -> bool:
        return self.served_rate < self.offered_rate - 1e-9


def station_sample(
    offered_rate: float,
    capacity_ghz: float,
    work_per_request: float,
    base_service_time: float,
    background_ghz: float = 0.0,
) -> TierSample:
    """Evaluate one PS station for one window.

    ``background_ghz`` models OS/daemon overhead consuming capacity
    independent of request rate.
    """
    served = served_rate(
        offered_rate, max(capacity_ghz - background_ghz, 1e-9), work_per_request
    )
    demand = offered_rate * work_per_request + background_ghz
    rho = demand / capacity_ghz if capacity_ghz > 0 else np.inf
    rt = ps_response_time(base_service_time, rho)
    return TierSample(
        offered_rate=offered_rate,
        served_rate=served,
        demand_ghz=demand,
        rho=float(rho),
        response_time=rt,
    )
