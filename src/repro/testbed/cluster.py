"""Physical nodes, VM placement, and the cgroups enforcement layer.

Reproduces the paper's testbed hardware (Fig. 11): identical servers with a
4-core 3.6 GHz Core i7 (SMT) and 16 GiB RAM; three host VMs, the fourth is
the load generator (not simulated — its work is the workload module).  Each
VM gets 2 vCPUs and 4 GiB.  ATM enforces per-VM CPU limits through a
:class:`~repro.resizing.actuation.SimulatedCgroupsActuator` per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.resizing.actuation import SimulatedCgroupsActuator
from repro.trace.model import Resource

__all__ = ["NodeSpec", "VMInstance", "TestbedCluster"]

#: Effective per-core clock of the testbed hosts (GHz).
CORE_GHZ = 3.6
#: Physical cores per host.
CORES_PER_NODE = 4
#: Fraction of physical CPU the hypervisor may hand out (scheduler slack).
ALLOCATABLE_FRACTION = 0.95
#: Throughput factor of simultaneous multithreading (the testbed i7 runs
#: 8 hardware threads on 4 cores; SMT yields ~25% extra throughput).
SMT_FACTOR = 1.25


@dataclass(frozen=True)
class NodeSpec:
    """One physical host."""

    name: str
    cores: int = CORES_PER_NODE
    core_ghz: float = CORE_GHZ
    ram_gb: float = 16.0
    smt_factor: float = SMT_FACTOR

    @property
    def cpu_capacity(self) -> float:
        """Total allocatable CPU in GHz (SMT-adjusted)."""
        return ALLOCATABLE_FRACTION * self.cores * self.core_ghz * self.smt_factor


@dataclass
class VMInstance:
    """One tier VM: identity, placement and enforced limits."""

    vm_id: str
    wiki: str          # "wiki-one" | "wiki-two"
    tier: str          # "apache" | "memcached" | "mysql"
    node: str
    cpu_limit: float   # enforced GHz limit (cgroups quota)
    ram_limit: float = 4.0

    def __post_init__(self) -> None:
        if self.cpu_limit <= 0 or self.ram_limit <= 0:
            raise ValueError(f"{self.vm_id}: limits must be positive")


class TestbedCluster:
    """Nodes + VMs + per-node actuators."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, nodes: List[NodeSpec], vms: List[VMInstance]) -> None:
        if not nodes or not vms:
            raise ValueError("cluster needs nodes and VMs")
        self.nodes = {node.name: node for node in nodes}
        if len(self.nodes) != len(nodes):
            raise ValueError("node names must be unique")
        self.vms = {vm.vm_id: vm for vm in vms}
        if len(self.vms) != len(vms):
            raise ValueError("VM ids must be unique")
        for vm in vms:
            if vm.node not in self.nodes:
                raise ValueError(f"VM {vm.vm_id} placed on unknown node {vm.node}")
        self._actuators: Dict[str, SimulatedCgroupsActuator] = {}
        for name, node in self.nodes.items():
            actuator = SimulatedCgroupsActuator(
                {Resource.CPU: node.cpu_capacity, Resource.RAM: node.ram_gb}
            )
            for vm in self.vms_on(name):
                actuator.register_vm(
                    vm.vm_id,
                    {Resource.CPU: vm.cpu_limit, Resource.RAM: vm.ram_limit},
                )
            self._actuators[name] = actuator

    def vms_on(self, node_name: str) -> List[VMInstance]:
        """VMs placed on a node, in id order (stable for reporting)."""
        return sorted(
            (vm for vm in self.vms.values() if vm.node == node_name),
            key=lambda vm: vm.vm_id,
        )

    def actuator(self, node_name: str) -> SimulatedCgroupsActuator:
        return self._actuators[node_name]

    def apply_cpu_limits(self, window: int, limits: Dict[str, float]) -> None:
        """Apply a batch of CPU limits (vm_id -> GHz) through the actuators."""
        by_node: Dict[str, Dict] = {}
        for vm_id, limit in limits.items():
            vm = self.vms[vm_id]
            by_node.setdefault(vm.node, {})[(vm_id, Resource.CPU)] = limit
        for node_name, node_limits in by_node.items():
            self._actuators[node_name].apply_limits(window, node_limits)
            for (vm_id, _resource), limit in node_limits.items():
                self.vms[vm_id].cpu_limit = limit

    def cpu_limits(self) -> Dict[str, float]:
        return {vm_id: vm.cpu_limit for vm_id, vm in self.vms.items()}

    def node_headroom(self, node_name: str) -> float:
        """Unallocated CPU on a node (GHz)."""
        used = sum(vm.cpu_limit for vm in self.vms_on(node_name))
        return self.nodes[node_name].cpu_capacity - used
