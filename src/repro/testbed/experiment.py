"""Original-vs-resized testbed runs (Figs. 12 and 13).

The experiment mirrors Section V-B: both MediaWiki deployments serve an
alternating low/high load for several hours.  The *original* run keeps the
operators' static CPU limits; the *resized* run lets ATM re-split each
node's CPU between its co-located VMs every resizing window, using
seasonal predictions of each VM's measured demand (the monitoring system
only sees usage up to the enforced quota, so predictions are driven by the
censored demand — exactly what a real deployment observes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.resizing.evaluate import ResizingAlgorithm, resize_allocation
from repro.resizing.problem import ResizingProblem
from repro.testbed.cluster import NodeSpec, TestbedCluster, VMInstance
from repro.testbed.mediawiki import (
    WikiDeployment,
    WikiSpec,
    wiki_one_spec,
    wiki_two_spec,
)
from repro.tickets.policy import TicketPolicy

__all__ = ["TestbedConfig", "ExperimentResult", "build_cluster", "run_testbed_experiment"]


@dataclass(frozen=True)
class TestbedConfig:
    """Testbed experiment parameters (defaults follow the paper)."""

    __test__ = False  # not a pytest test class despite the name

    duration_windows: int = 24      # 6 hours of 15-minute windows
    resize_every: int = 4           # resizing window = 1 hour
    warmup_windows: int = 0         # resizing may act from the start ...
    profile_first: bool = True      # ... because a profiling cycle runs first
    threshold_pct: float = 60.0
    epsilon_pct: float = 5.0
    #: Operators' conservative static quota per VM (GHz) — the "original"
    #: configuration the paper compares against.
    initial_limit_ghz: float = 3.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.duration_windows < 1:
            raise ValueError("duration_windows must be >= 1")
        if self.resize_every < 1:
            raise ValueError("resize_every must be >= 1")
        if self.warmup_windows < 0:
            raise ValueError("warmup_windows must be >= 0")


def build_cluster(
    wiki_one: Optional[WikiSpec] = None,
    wiki_two: Optional[WikiSpec] = None,
    initial_limit_ghz: float = 3.0,
) -> Tuple[TestbedCluster, WikiDeployment, WikiDeployment]:
    """Build the Fig. 11 topology: 3 hosting nodes, 11 tier VMs.

    Initial CPU limits are the operators' conservative static quotas
    (``initial_limit_ghz`` per VM) — each VM nominally has 2 vCPUs, but the
    enforced cgroups share is what the monitoring reports usage against.
    """
    spec_one = wiki_one or wiki_one_spec()
    spec_two = wiki_two or wiki_two_spec()
    nodes = [NodeSpec("node2"), NodeSpec("node3"), NodeSpec("node4")]
    placement = {
        "node2": [
            ("w1-apache-1", spec_one.name, "apache"),
            ("w1-apache-2", spec_one.name, "apache"),
            ("w1-memcached-1", spec_one.name, "memcached"),
        ],
        "node3": [
            ("w1-apache-3", spec_one.name, "apache"),
            ("w1-apache-4", spec_one.name, "apache"),
            ("w1-memcached-2", spec_one.name, "memcached"),
        ],
        "node4": [
            ("w1-mysql-1", spec_one.name, "mysql"),
            ("w2-apache-1", spec_two.name, "apache"),
            ("w2-apache-2", spec_two.name, "apache"),
            ("w2-memcached-1", spec_two.name, "memcached"),
            ("w2-mysql-1", spec_two.name, "mysql"),
        ],
    }
    vms: List[VMInstance] = []
    for node in nodes:
        entries = placement[node.name]
        # Each VM nominally gets 4 GiB; on the denser node the balloon
        # driver trims shares so the host's 16 GiB is never oversubscribed.
        ram_share = min(4.0, node.ram_gb / len(entries))
        for vm_id, wiki, tier in entries:
            vms.append(
                VMInstance(
                    vm_id=vm_id,
                    wiki=wiki,
                    tier=tier,
                    node=node.name,
                    cpu_limit=initial_limit_ghz,
                    ram_limit=ram_share,
                )
            )
    cluster = TestbedCluster(nodes, vms)
    return (
        cluster,
        WikiDeployment(spec_one, cluster),
        WikiDeployment(spec_two, cluster),
    )


@dataclass
class ExperimentResult:
    """Everything one testbed run produces."""

    resizing: bool
    usage_pct: Dict[str, np.ndarray]            # vm_id -> series
    limits: Dict[str, np.ndarray]               # vm_id -> enforced limit series
    throughput: Dict[str, np.ndarray]           # wiki -> series (rps)
    response_time: Dict[str, np.ndarray]        # wiki -> series (seconds)
    threshold_pct: float

    def tickets(self, vm_id: Optional[str] = None) -> int:
        """Ticket count (usage above threshold), total or per VM."""
        if vm_id is not None:
            return int((self.usage_pct[vm_id] > self.threshold_pct).sum())
        return int(
            sum((series > self.threshold_pct).sum() for series in self.usage_pct.values())
        )

    def mean_throughput(self, wiki: str) -> float:
        return float(self.throughput[wiki].mean())

    def mean_response_time(self, wiki: str) -> float:
        """Request-weighted mean response time (seconds)."""
        tput = self.throughput[wiki]
        rt = self.response_time[wiki]
        total = tput.sum()
        if total <= 0:
            return float(rt.mean())
        return float((rt * tput).sum() / total)


def _seasonal_prediction(
    measured: np.ndarray, horizon: int, period: int
) -> np.ndarray:
    """Seasonal-naive forecast of the next ``horizon`` windows per VM.

    ATM's framework accepts any temporal model; the testbed controller uses
    the cheapest seasonal model because the load alternates with a known
    period — what matters here is the resizing, not the forecaster.
    """
    t = measured.shape[1]
    if t >= period:
        base = measured[:, t - period :]
    else:  # not enough history: repeat the last window
        base = measured[:, -1:]
    reps = int(np.ceil(horizon / base.shape[1]))
    return np.tile(base, reps)[:, :horizon]


def run_testbed_experiment(
    resizing: bool,
    config: Optional[TestbedConfig] = None,
    wiki_one: Optional[WikiSpec] = None,
    wiki_two: Optional[WikiSpec] = None,
) -> ExperimentResult:
    """Run one testbed experiment (original or ATM-resized)."""
    cfg = config or TestbedConfig()
    cluster, dep_one, dep_two = build_cluster(
        wiki_one, wiki_two, initial_limit_ghz=cfg.initial_limit_ghz
    )
    deployments = (dep_one, dep_two)
    policy = TicketPolicy(threshold_pct=cfg.threshold_pct)

    rng = np.random.default_rng(cfg.seed)
    rates = {
        dep.spec.name: dep.spec.load.rates(cfg.duration_windows, rng)
        for dep in deployments
    }
    period = max(dep.spec.load.period_windows for dep in deployments)

    vm_ids = sorted(cluster.vms)
    usage: Dict[str, List[float]] = {vm_id: [] for vm_id in vm_ids}
    limits: Dict[str, List[float]] = {vm_id: [] for vm_id in vm_ids}
    measured: Dict[str, List[float]] = {vm_id: [] for vm_id in vm_ids}
    throughput: Dict[str, List[float]] = {dep.spec.name: [] for dep in deployments}
    response: Dict[str, List[float]] = {dep.spec.name: [] for dep in deployments}

    if resizing and cfg.profile_first:
        # Profiling cycle: before the measured experiment, ATM observes one
        # full load cycle with each node's capacity split evenly — wide
        # enough limits that demands are seen uncensored.  This plays the
        # role of the 5-day training history in the trace study.
        profile_limits: Dict[str, float] = {}
        for node_name, node in cluster.nodes.items():
            node_vms = cluster.vms_on(node_name)
            for vm in node_vms:
                profile_limits[vm.vm_id] = node.cpu_capacity / len(node_vms)
        original_limits = cluster.cpu_limits()
        cluster.apply_cpu_limits(-period - 1, profile_limits)
        profile_rng = np.random.default_rng(cfg.seed + 1)
        profile_rates = {
            dep.spec.name: dep.spec.load.rates(period, profile_rng)
            for dep in deployments
        }
        for window in range(period):
            demands: Dict[str, float] = {}
            for dep in deployments:
                metrics = dep.step(float(profile_rates[dep.spec.name][window]))
                demands.update(metrics.demands_ghz)
            for vm_id in vm_ids:
                limit = cluster.vms[vm_id].cpu_limit
                measured[vm_id].append(min(demands[vm_id], limit))
        cluster.apply_cpu_limits(-1, original_limits)

    for window in range(cfg.duration_windows):
        if (
            resizing
            and window >= cfg.warmup_windows
            and window % cfg.resize_every == 0
        ):
            _atm_resize(cluster, measured, vm_ids, cfg, policy, period, window)

        demands: Dict[str, float] = {}
        for dep in deployments:
            metrics = dep.step(float(rates[dep.spec.name][window]))
            throughput[dep.spec.name].append(metrics.throughput_rps)
            response[dep.spec.name].append(metrics.response_time_s)
            demands.update(metrics.demands_ghz)
        for vm_id in vm_ids:
            limit = cluster.vms[vm_id].cpu_limit
            observed = min(demands[vm_id], limit)  # cgroups cap what a VM can use
            usage[vm_id].append(100.0 * observed / limit)
            limits[vm_id].append(limit)
            measured[vm_id].append(observed)

    return ExperimentResult(
        resizing=resizing,
        usage_pct={k: np.asarray(v) for k, v in usage.items()},
        limits={k: np.asarray(v) for k, v in limits.items()},
        throughput={k: np.asarray(v) for k, v in throughput.items()},
        response_time={k: np.asarray(v) for k, v in response.items()},
        threshold_pct=cfg.threshold_pct,
    )


def _atm_resize(
    cluster: TestbedCluster,
    measured: Dict[str, List[float]],
    vm_ids: List[str],
    cfg: TestbedConfig,
    policy: TicketPolicy,
    period: int,
    window: int,
) -> None:
    """One ATM resizing actuation across all nodes."""
    for node_name in cluster.nodes:
        node_vms = cluster.vms_on(node_name)
        ids = [vm.vm_id for vm in node_vms]
        history = np.array([measured[vm_id] for vm_id in ids])
        if history.shape[1] < 1:
            continue
        predicted = _seasonal_prediction(history, cfg.resize_every, period)
        current = np.array([vm.cpu_limit for vm in node_vms])
        lookback = min(history.shape[1], period)
        lower = history[:, -lookback:].max(axis=1)
        capacity = cluster.nodes[node_name].cpu_capacity
        problem = ResizingProblem(
            demands=predicted,
            capacity=capacity,
            alpha=policy.alpha,
            lower_bounds=np.minimum(lower, capacity),
            upper_bounds=np.full(len(ids), capacity),
        )
        allocation, feasible = resize_allocation(
            problem,
            ResizingAlgorithm.ATM,
            epsilon=cfg.epsilon_pct / 100.0 * current,
            current=current,
        )
        if not feasible:
            continue
        cluster.apply_cpu_limits(window, dict(zip(ids, allocation)))
