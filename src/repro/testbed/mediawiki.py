"""MediaWiki deployment model: tiers, service demands, per-window metrics.

Requests enter a load balancer, fan out over the Apache front-ends, hit
memcached for every request, and fall through to MySQL on cache misses.
Per ticketing window the model computes, from the offered request rate and
the currently enforced CPU limits:

* per-VM CPU demand (GHz) and usage (percent of limit, capped at 100 —
  cgroups do not let a VM run past its quota),
* wiki throughput (bounded by the most saturated tier), and
* mean user response time (sum of PS tier response times plus a fixed
  network/render component).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.testbed.cluster import TestbedCluster, VMInstance
from repro.testbed.queueing import SATURATION_RHO, ps_response_time
from repro.testbed.workload import AlternatingLoad

__all__ = ["TierSpec", "WikiSpec", "WikiDeployment", "wiki_one_spec", "wiki_two_spec"]


@dataclass(frozen=True)
class TierSpec:
    """CPU cost and latency profile of one tier."""

    work_per_request: float      # GHz-seconds of CPU per request hitting the tier
    base_service_time: float     # seconds at zero load
    background_ghz: float = 0.15  # OS / daemon overhead


@dataclass(frozen=True)
class WikiSpec:
    """One MediaWiki deployment: topology, tier costs, offered load."""

    name: str
    n_apache: int
    n_memcached: int
    n_db: int
    apache: TierSpec
    memcached: TierSpec
    mysql: TierSpec
    cache_miss_ratio: float
    network_overhead: float      # fixed RT component (seconds)
    load: AlternatingLoad

    def __post_init__(self) -> None:
        if min(self.n_apache, self.n_memcached, self.n_db) < 1:
            raise ValueError(f"{self.name}: every tier needs at least one VM")
        if not 0.0 <= self.cache_miss_ratio <= 1.0:
            raise ValueError("cache_miss_ratio must be in [0, 1]")


def wiki_one_spec() -> WikiSpec:
    """The larger deployment: 4 Apache, 2 Memcached, 1 MySQL (Fig. 11)."""
    return WikiSpec(
        name="wiki-one",
        n_apache=4,
        n_memcached=2,
        n_db=1,
        apache=TierSpec(work_per_request=0.024, base_service_time=0.070),
        memcached=TierSpec(work_per_request=0.0012, base_service_time=0.004),
        mysql=TierSpec(work_per_request=0.008, base_service_time=0.075),
        cache_miss_ratio=0.35,
        network_overhead=0.18,
        load=AlternatingLoad(low_rps=130.0, high_rps=400.0),
    )


def wiki_two_spec() -> WikiSpec:
    """The smaller deployment: 2 Apache, 1 Memcached, 1 MySQL (Fig. 11)."""
    return WikiSpec(
        name="wiki-two",
        n_apache=2,
        n_memcached=1,
        n_db=1,
        apache=TierSpec(work_per_request=0.27, base_service_time=0.035),
        memcached=TierSpec(work_per_request=0.004, base_service_time=0.006),
        mysql=TierSpec(work_per_request=0.10, base_service_time=0.80),
        cache_miss_ratio=0.40,
        network_overhead=0.17,
        load=AlternatingLoad(low_rps=10.0, high_rps=24.0, start_low=False),
    )


@dataclass(frozen=True)
class WindowMetrics:
    """Per-window application metrics of one wiki."""

    offered_rps: float
    throughput_rps: float
    response_time_s: float
    demands_ghz: Dict[str, float]  # vm_id -> CPU demand


class WikiDeployment:
    """Binds a :class:`WikiSpec` to its VM instances on the cluster."""

    def __init__(self, spec: WikiSpec, cluster: TestbedCluster) -> None:
        self.spec = spec
        self.cluster = cluster
        mine = [vm for vm in cluster.vms.values() if vm.wiki == spec.name]
        self.apache = sorted((vm for vm in mine if vm.tier == "apache"), key=lambda v: v.vm_id)
        self.memcached = sorted(
            (vm for vm in mine if vm.tier == "memcached"), key=lambda v: v.vm_id
        )
        self.mysql = sorted((vm for vm in mine if vm.tier == "mysql"), key=lambda v: v.vm_id)
        expected = (spec.n_apache, spec.n_memcached, spec.n_db)
        actual = (len(self.apache), len(self.memcached), len(self.mysql))
        if expected != actual:
            raise ValueError(
                f"{spec.name}: cluster hosts {actual} (apache, memcached, mysql) "
                f"VMs but the spec wants {expected}"
            )

    def _tier_step(
        self,
        vms: List[VMInstance],
        tier: TierSpec,
        offered_rps: float,
    ) -> Tuple[float, float, Dict[str, float]]:
        """Evaluate one tier; returns (served rate, mean RT, per-VM demand)."""
        per_vm_rate = offered_rps / len(vms)
        served = 0.0
        demands: Dict[str, float] = {}
        rts: List[float] = []
        for vm in vms:
            demand = per_vm_rate * tier.work_per_request + tier.background_ghz
            demands[vm.vm_id] = demand
            usable = max(vm.cpu_limit * SATURATION_RHO - tier.background_ghz, 1e-9)
            vm_served = min(per_vm_rate, usable / tier.work_per_request)
            served += vm_served
            # Latency is experienced by *served* requests (the balancer
            # bounds the queue), at a utilization capped below the PS pole.
            rho_served = (vm_served * tier.work_per_request + tier.background_ghz) / max(
                vm.cpu_limit, 1e-9
            )
            rts.append(
                ps_response_time(tier.base_service_time, rho_served, rho_cap=0.90)
            )
        return served, float(np.mean(rts)), demands

    def step(self, offered_rps: float) -> WindowMetrics:
        """Evaluate the whole deployment for one ticketing window."""
        spec = self.spec
        apache_served, apache_rt, demands = self._tier_step(
            self.apache, spec.apache, offered_rps
        )
        mc_served, mc_rt, mc_demands = self._tier_step(
            self.memcached, spec.memcached, apache_served
        )
        demands.update(mc_demands)
        miss_rps = mc_served * spec.cache_miss_ratio
        db_served_miss, db_rt, db_demands = self._tier_step(
            self.mysql, spec.mysql, miss_rps
        )
        demands.update(db_demands)
        # End-to-end throughput: misses that the DB cannot absorb stall the
        # requests that triggered them.
        if spec.cache_miss_ratio > 0:
            db_limited = db_served_miss / spec.cache_miss_ratio
        else:  # pragma: no cover - both specs have misses
            db_limited = float("inf")
        throughput = min(apache_served, mc_served, db_limited)
        response_time = (
            apache_rt
            + mc_rt
            + spec.cache_miss_ratio * db_rt
            + spec.network_overhead
        )
        return WindowMetrics(
            offered_rps=offered_rps,
            throughput_rps=float(throughput),
            response_time_s=float(response_time),
            demands_ghz=demands,
        )

    @property
    def vm_ids(self) -> List[str]:
        return [vm.vm_id for vm in (*self.apache, *self.memcached, *self.mysql)]
