"""Simulated MediaWiki testbed (paper Section V-B, Figs. 11-13).

The paper's experimental cluster — two MediaWiki deployments (Apache /
Memcached / MySQL tiers) on three QEMU-KVM hosts plus a load generator,
with ATM enforcing CPU limits through cgroups — is reproduced here as a
time-stepped queueing simulation:

* :mod:`repro.testbed.workload` — the alternating low/high load generator.
* :mod:`repro.testbed.queueing` — processor-sharing tier response times.
* :mod:`repro.testbed.cluster` — nodes, VM placement, cgroups actuation.
* :mod:`repro.testbed.mediawiki` — the wiki-one / wiki-two topologies and
  per-window tier demand/latency model.
* :mod:`repro.testbed.experiment` — original-vs-resized runs producing the
  Fig. 12 usage series and Fig. 13 RT/TPUT comparison.
"""

from repro.testbed.cluster import NodeSpec, TestbedCluster, VMInstance
from repro.testbed.experiment import (
    ExperimentResult,
    TestbedConfig,
    run_testbed_experiment,
)
from repro.testbed.mediawiki import WikiDeployment, WikiSpec, wiki_one_spec, wiki_two_spec
from repro.testbed.workload import AlternatingLoad

__all__ = [
    "AlternatingLoad",
    "ExperimentResult",
    "NodeSpec",
    "TestbedCluster",
    "TestbedConfig",
    "VMInstance",
    "WikiDeployment",
    "WikiSpec",
    "run_testbed_experiment",
    "wiki_one_spec",
    "wiki_two_spec",
]
