"""Dynamic time warping (DTW) distances.

Section III-A of the paper clusters usage series with DTW: the dissimilarity
between two series is the cumulative squared distance along the optimal
warping path through the pairwise distance matrix (paper Eq. 2):

    lambda(i, j) = d(p_i, q_j)
                   + min(lambda(i-1, j-1), lambda(i-1, j), lambda(i, j-1))

with ``d(p_i, q_j) = (p_i - q_j)^2``.

The dynamic program is evaluated along anti-diagonals so each wavefront is a
single vectorized NumPy step — the classic dependency on ``lambda(i, j-1)``
within a row disappears because all three predecessors of an anti-diagonal
cell live on the two previous anti-diagonals.  This keeps fleet-scale
clustering (hundreds of boxes x hundreds of pairwise DTWs) tractable in
pure Python.

An optional Sakoe-Chiba band constraint bounds warping, and
:func:`dtw_distance_matrix` computes the pairwise matrix the clustering step
consumes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.timeseries.vector import vector_spatial_enabled

__all__ = ["dtw_distance", "dtw_matrix", "dtw_path", "dtw_distance_matrix"]

_INF = np.inf


def _as_1d(series: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(series, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def dtw_matrix(
    p: Sequence[float],
    q: Sequence[float],
    window: Optional[int] = None,
) -> np.ndarray:
    """Return the full cumulative-cost matrix ``lambda`` for two series.

    Parameters
    ----------
    p, q:
        The two input series.
    window:
        Optional Sakoe-Chiba band half-width. When given, cells with
        ``|i - j| > window`` are excluded from the warping path (the band is
        widened automatically so a path exists for unequal lengths).
        ``None`` means unconstrained.

    Returns
    -------
    numpy.ndarray
        An ``(n, m)`` matrix whose ``[i, j]`` entry is the minimal cumulative
        squared distance of aligning ``p[:i+1]`` with ``q[:j+1]``; cells
        outside the band hold ``inf``.
    """
    pa = _as_1d(p, "p")
    qa = _as_1d(q, "q")
    n, m = pa.size, qa.size
    if window is not None:
        if window < 0:
            raise ValueError("window must be non-negative")
        window = max(window, abs(n - m))

    local = (pa[:, None] - qa[None, :]) ** 2
    if window is not None:
        i_idx = np.arange(n)[:, None]
        j_idx = np.arange(m)[None, :]
        local = np.where(np.abs(i_idx - j_idx) <= window, local, _INF)

    cost = np.full((n, m), _INF, dtype=float)
    # prev / prev2 hold the two previous anti-diagonals, indexed by row i.
    prev = np.full(n, _INF)
    prev2 = np.full(n, _INF)
    for k in range(n + m - 1):
        lo = max(0, k - m + 1)
        hi = min(n - 1, k)
        rows = np.arange(lo, hi + 1)
        cols = k - rows
        d = local[rows, cols]
        cur = np.full(n, _INF)
        if k == 0:
            cur[0] = d[0]
        else:
            # Predecessors: (i, j-1) -> prev[i]; (i-1, j) -> prev[i-1];
            # (i-1, j-1) -> prev2[i-1].  Invalid neighbours are inf.
            from_left = prev[rows]
            from_up = np.where(rows >= 1, prev[rows - 1], _INF)
            from_diag = np.where(rows >= 1, prev2[rows - 1], _INF)
            best = np.minimum(np.minimum(from_left, from_up), from_diag)
            # The (0, 0) origin has no predecessor; it was seeded at k == 0.
            values = d + best
            if lo == 0 and k == 0:  # pragma: no cover - handled above
                values[0] = d[0]
            cur[rows] = values
        cost[rows, cols] = cur[rows]
        prev2, prev = prev, cur
    return cost


def dtw_distance(
    p: Sequence[float],
    q: Sequence[float],
    window: Optional[int] = None,
    normalize: bool = False,
) -> float:
    """Return the DTW dissimilarity ``lambda(n, m)`` between two series.

    Parameters
    ----------
    p, q:
        Input series.
    window:
        Optional Sakoe-Chiba band half-width (see :func:`dtw_matrix`).
    normalize:
        When true, divide the cumulative cost by ``n + m`` so distances of
        series with different lengths are comparable.
    """
    cost = dtw_matrix(p, q, window=window)
    value = float(cost[-1, -1])
    if normalize:
        value /= cost.shape[0] + cost.shape[1]
    return value


def dtw_path(
    p: Sequence[float],
    q: Sequence[float],
    window: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """Return the optimal warping path as a list of ``(i, j)`` index pairs.

    The path starts at ``(0, 0)``, ends at ``(n-1, m-1)`` and is monotone in
    both coordinates (each step moves by ``(1, 1)``, ``(1, 0)`` or ``(0, 1)``).
    """
    cost = dtw_matrix(p, q, window=window)
    i, j = cost.shape[0] - 1, cost.shape[1] - 1
    path = [(i, j)]
    while i > 0 or j > 0:
        if i == 0:
            j -= 1
        elif j == 0:
            i -= 1
        else:
            candidates = (
                (cost[i - 1, j - 1], i - 1, j - 1),
                (cost[i - 1, j], i - 1, j),
                (cost[i, j - 1], i, j - 1),
            )
            _, i, j = min(candidates, key=lambda c: c[0])
        path.append((i, j))
    path.reverse()
    return path


def _dtw_batch(p: np.ndarray, q: np.ndarray, window: Optional[int]) -> np.ndarray:
    """DTW distances for aligned batches of equal-length series.

    ``p`` and ``q`` are ``(n_pairs, n)`` arrays; pair ``k`` is
    ``(p[k], q[k])``.  The anti-diagonal dynamic program runs once with the
    pair axis leading, so the whole batch costs one DP's worth of Python
    overhead.  Returns the ``(n_pairs,)`` distances.

    Two implementations produce bit-identical results: the reference
    wavefront (fancy-indexed gathers, fresh temporaries per diagonal) and a
    low-overhead variant that transposes the problem so the pair axis is
    innermost — every per-diagonal operand becomes a contiguous
    ``(width, n_pairs)`` block and every temporary a preallocated ``out=``
    buffer, with the same elementwise subtract/square/min/add.
    ``REPRO_VECTOR_SPATIAL=0`` selects the reference.
    """
    if vector_spatial_enabled():
        return _dtw_batch_fast(p, q, window)
    return _dtw_batch_reference(p, q, window)


def _dtw_batch_fast(p: np.ndarray, q: np.ndarray, window: Optional[int]) -> np.ndarray:
    """Transposed wavefront: contiguous diagonal blocks + ``out=`` buffers."""
    n_pairs, n = p.shape
    half = window if window is not None else n  # band half-width
    # Pair axis last: a diagonal's rows lo..hi slice contiguous memory.
    # qT_rev[r] == q[:, n-1-r], so the descending gather q[:, k-rows]
    # becomes the ascending contiguous slice qT_rev[n-1-k+lo : n-k+hi].
    p_t = np.ascontiguousarray(p.T)
    q_t_rev = np.ascontiguousarray(q[:, ::-1].T)
    prev = np.full((n + 2, n_pairs), _INF)
    prev2 = np.full((n + 2, n_pairs), _INF)
    cur = np.full((n + 2, n_pairs), _INF)
    local = np.empty((n, n_pairs))
    best = np.empty((n, n_pairs))
    for k in range(2 * n - 1):
        # Active rows on anti-diagonal k: inside the matrix and the band
        # (|2i - k| <= half).
        lo = max(0, k - n + 1, (k - half + 1) // 2)
        hi = min(n - 1, k, (k + half) // 2)
        if lo > hi:
            break  # pragma: no cover - band always reaches the corner
        width = hi - lo + 1
        d = local[:width]
        np.subtract(p_t[lo : hi + 1], q_t_rev[n - 1 - k + lo : n - k + hi], out=d)
        np.multiply(d, d, out=d)
        if k == 0:
            cur[1] = d[0]
        else:
            b = best[:width]
            np.minimum(prev[lo + 1 : hi + 2], prev[lo : hi + 1], out=b)
            np.minimum(b, prev2[lo : hi + 1], out=b)
            np.add(d, b, out=cur[lo + 1 : hi + 2])
        # Sentinels just outside the active slice keep stale buffer cells
        # from leaking into later diagonals.
        cur[lo] = _INF
        if hi + 2 <= n + 1:
            cur[hi + 2] = _INF
        prev2, prev, cur = prev, cur, prev2
    return prev[n].copy()


def _dtw_batch_reference(p: np.ndarray, q: np.ndarray, window: Optional[int]) -> np.ndarray:
    """The reference wavefront implementation (see :func:`_dtw_batch`)."""
    n_pairs, n = p.shape
    half = window if window is not None else n  # band half-width
    # Padded wavefront buffers, indexed by row i + 1; column 0 is a sentinel.
    prev = np.full((n_pairs, n + 2), _INF)
    prev2 = np.full((n_pairs, n + 2), _INF)
    cur = np.full((n_pairs, n + 2), _INF)
    for k in range(2 * n - 1):
        # Active rows on anti-diagonal k: inside the matrix and the band
        # (|2i - k| <= half).
        lo = max(0, k - n + 1, (k - half + 1) // 2)
        hi = min(n - 1, k, (k + half) // 2)
        if lo > hi:
            break  # pragma: no cover - band always reaches the corner
        rows = np.arange(lo, hi + 1)
        d = (p[:, rows] - q[:, k - rows]) ** 2
        sl = slice(lo + 1, hi + 2)
        sl_prev = slice(lo, hi + 1)
        if k == 0:
            cur[:, 1] = d[:, 0]
        else:
            best = np.minimum(prev[:, sl], prev[:, sl_prev])
            np.minimum(best, prev2[:, sl_prev], out=best)
            cur[:, sl] = d + best
        # Sentinels just outside the active slice keep stale buffer cells
        # from leaking into later diagonals.
        cur[:, lo] = _INF
        if hi + 2 <= n + 1:
            cur[:, hi + 2] = _INF
        prev2, prev, cur = prev, cur, prev2
    return prev[:, n].copy()


def dtw_distance_matrix(
    series: Sequence[Sequence[float]],
    window: Optional[int] = None,
    normalize: bool = False,
    zscore: bool = False,
) -> np.ndarray:
    """Return the symmetric pairwise DTW distance matrix for many series.

    Equal-length inputs (the usual case: all series of one box) go through a
    batched anti-diagonal dynamic program that evaluates every pair
    simultaneously; mixed lengths fall back to per-pair computation.

    Parameters
    ----------
    series:
        A sequence of one-dimensional series (they may have unequal lengths).
    window:
        Optional Sakoe-Chiba band half-width applied to every pair.
    normalize:
        Normalize each pairwise distance by the sum of series lengths.
    zscore:
        Standardize each series (zero mean, unit variance) before comparing.
        Constant series are mapped to all-zeros.  This makes the clustering
        scale-free, which matters because co-located VMs have heterogeneous
        capacities.
    """
    arrays = [_as_1d(s, f"series[{k}]") for k, s in enumerate(series)]
    if zscore:
        standardized = []
        for arr in arrays:
            std = arr.std()
            if std <= 1e-12:
                standardized.append(np.zeros_like(arr))
            else:
                standardized.append((arr - arr.mean()) / std)
        arrays = standardized
    n = len(arrays)
    dist = np.zeros((n, n), dtype=float)
    lengths = {arr.size for arr in arrays}
    if len(lengths) == 1 and n > 1:
        stack = np.vstack(arrays)
        a_idx, b_idx = np.triu_indices(n, k=1)
        values = _dtw_batch(stack[a_idx], stack[b_idx], window)
        if normalize:
            values = values / (2 * stack.shape[1])
        dist[a_idx, b_idx] = values
        dist[b_idx, a_idx] = values
        return dist
    for a in range(n):
        for b in range(a + 1, n):
            d = dtw_distance(arrays[a], arrays[b], window=window, normalize=normalize)
            dist[a, b] = d
            dist[b, a] = d
    return dist
