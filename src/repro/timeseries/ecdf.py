"""Empirical CDFs and box-plot summaries for the evaluation figures.

The paper's figures report two recurring shapes: cumulative distribution
functions across boxes (Figs. 3 and 9) and box plots with 25th/50th/75th
percentiles, mean and whiskers (Figs. 6 and 7).  Both are small, dependency-
free helpers here so every benchmark prints the same statistics the paper
plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["Ecdf", "BoxplotSummary", "histogram_shares"]


@dataclass(frozen=True)
class Ecdf:
    """Empirical cumulative distribution function of a finite sample."""

    values: np.ndarray

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "Ecdf":
        arr = np.asarray([s for s in samples if np.isfinite(s)], dtype=float)
        if arr.size == 0:
            raise ValueError("ECDF requires at least one finite sample")
        return cls(values=np.sort(arr))

    def __call__(self, x: float) -> float:
        """Return P(X <= x)."""
        return float(np.searchsorted(self.values, x, side="right") / self.values.size)

    def quantile(self, q: float) -> float:
        """Return the q-quantile (linear interpolation)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.values, q))

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def evaluate(self, grid: Sequence[float]) -> List[Tuple[float, float]]:
        """Return ``(x, F(x))`` pairs over an explicit grid, for table printing."""
        return [(float(x), self(float(x))) for x in grid]


@dataclass(frozen=True)
class BoxplotSummary:
    """The statistics a paper box plot encodes: quartiles, mean, whiskers."""

    q25: float
    median: float
    q75: float
    mean: float
    whisker_low: float
    whisker_high: float
    n: int

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "BoxplotSummary":
        arr = np.asarray([s for s in samples if np.isfinite(s)], dtype=float)
        if arr.size == 0:
            raise ValueError("box plot requires at least one finite sample")
        return cls(
            q25=float(np.quantile(arr, 0.25)),
            median=float(np.quantile(arr, 0.50)),
            q75=float(np.quantile(arr, 0.75)),
            mean=float(arr.mean()),
            whisker_low=float(arr.min()),
            whisker_high=float(arr.max()),
            n=int(arr.size),
        )

    def as_row(self) -> Tuple[float, float, float, float, float, float]:
        return (
            self.whisker_low,
            self.q25,
            self.median,
            self.q75,
            self.whisker_high,
            self.mean,
        )


def histogram_shares(
    samples: Iterable[float], bin_edges: Sequence[float]
) -> List[Tuple[str, float]]:
    """Return the share of samples falling into each ``[lo, hi)`` bin.

    Used for Fig. 5's "percentage of boxes with k clusters" bars.  The last
    bin is closed on the right so the maximum is counted.
    """
    arr = np.asarray(list(samples), dtype=float)
    edges = np.asarray(bin_edges, dtype=float)
    if edges.ndim != 1 or edges.size < 2:
        raise ValueError("need at least two bin edges")
    if np.any(np.diff(edges) <= 0):
        raise ValueError("bin edges must be strictly increasing")
    if arr.size == 0:
        raise ValueError("need at least one sample")
    counts, _ = np.histogram(arr, bins=edges)
    labels = [
        f"{int(lo)}-{int(hi - 1)}" if hi - lo > 1 else f"{int(lo)}"
        for lo, hi in zip(edges[:-1], edges[1:])
    ]
    shares = counts / arr.size
    return list(zip(labels, shares.tolist()))
