"""Agglomerative hierarchical clustering over precomputed dissimilarities.

Section III-A applies hierarchical clustering to the pairwise DTW distance
matrix, sweeping the number of clusters from 2 to ``(M*N)/2`` and selecting
the cut with the best mean silhouette.  This module provides the clustering
half: a from-scratch agglomerative algorithm with single, complete and
average (UPGMA) linkage that operates on any precomputed symmetric distance
matrix, and a dendrogram cut for an arbitrary number of clusters.

The implementation follows the classical Lance-Williams style update on the
full distance matrix, which is O(n^3) in the worst case — more than fast
enough for the per-box problem sizes here (a few dozen series per box).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

import numpy as np

__all__ = ["Linkage", "Merge", "HierarchicalClustering"]


class Linkage(enum.Enum):
    """Supported linkage criteria for agglomerative clustering."""

    SINGLE = "single"
    COMPLETE = "complete"
    AVERAGE = "average"


@dataclass(frozen=True)
class Merge:
    """One agglomeration step: clusters ``left`` and ``right`` merge at ``height``.

    Cluster ids follow the scipy convention: ids ``0..n-1`` are the original
    observations; the merge recorded at step ``k`` creates cluster ``n + k``.
    """

    left: int
    right: int
    height: float
    size: int


@dataclass
class HierarchicalClustering:
    """Agglomerative clustering of ``n`` items from a distance matrix.

    Parameters
    ----------
    distances:
        Symmetric ``(n, n)`` dissimilarity matrix with a zero diagonal.
    linkage:
        Linkage criterion; the paper's DTW clustering uses average linkage.

    Examples
    --------
    >>> import numpy as np
    >>> d = np.array([[0., 1., 9.], [1., 0., 9.], [9., 9., 0.]])
    >>> hc = HierarchicalClustering(d)
    >>> hc.cut(2)
    [0, 0, 1]
    """

    distances: np.ndarray
    linkage: Linkage = Linkage.AVERAGE
    merges: List[Merge] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        d = np.asarray(self.distances, dtype=float)
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise ValueError(f"distance matrix must be square, got {d.shape}")
        if d.shape[0] < 1:
            raise ValueError("need at least one item")
        if not np.allclose(d, d.T, atol=1e-9):
            raise ValueError("distance matrix must be symmetric")
        if np.any(np.diag(d) != 0):
            raise ValueError("distance matrix must have a zero diagonal")
        if np.any(d < 0):
            raise ValueError("distances must be non-negative")
        self.distances = d
        self.merges = self._build()
        self._cut_cache: Dict[int, List[int]] = {}

    @property
    def n_items(self) -> int:
        return self.distances.shape[0]

    def _build(self) -> List[Merge]:
        n = self.n_items
        if n == 1:
            return []
        # The matrix shrinks logically via the `alive` mask; merged rows keep
        # their slot and carry the id of the cluster they now represent.
        # Dead rows/columns are parked at inf so the closest active pair is
        # one argmin over the full matrix — no O(n^2) submatrix copy per
        # merge.  Row-major argmin over the full matrix visits the alive
        # entries in the same order as the compacted submatrix would, so
        # tie-breaking is unchanged.
        dist = self.distances.copy()
        np.fill_diagonal(dist, np.inf)
        cluster_id = list(range(n))
        sizes = [1] * n
        merges: List[Merge] = []
        alive = np.ones(n, dtype=bool)
        next_id = n
        for _ in range(n - 1):
            # Find the closest active pair.
            i, j = divmod(int(np.argmin(dist)), n)
            if i == j:  # pragma: no cover - argmin on inf diagonal prevents this
                raise RuntimeError("degenerate merge")
            height = float(dist[i, j])
            merges.append(
                Merge(
                    left=cluster_id[i],
                    right=cluster_id[j],
                    height=height,
                    size=sizes[i] + sizes[j],
                )
            )
            # Merge j into i using the Lance-Williams update.
            others = np.flatnonzero(alive)
            others = others[(others != i) & (others != j)]
            if others.size:
                di = dist[i, others]
                dj = dist[j, others]
                if self.linkage is Linkage.SINGLE:
                    new = np.minimum(di, dj)
                elif self.linkage is Linkage.COMPLETE:
                    new = np.maximum(di, dj)
                else:  # AVERAGE (UPGMA)
                    wi, wj = sizes[i], sizes[j]
                    new = (wi * di + wj * dj) / (wi + wj)
                dist[i, others] = new
                dist[others, i] = new
            dist[j, :] = np.inf
            dist[:, j] = np.inf
            alive[j] = False
            sizes[i] += sizes[j]
            cluster_id[i] = next_id
            next_id += 1
        return merges

    def cut(self, n_clusters: int) -> List[int]:
        """Return flat cluster labels for a cut producing ``n_clusters`` groups.

        Labels are renumbered ``0..n_clusters-1`` in order of first appearance.
        Cuts are cached per instance; sweeping many cluster counts (the
        silhouette search) should use :meth:`cuts`, which replays the merge
        sequence once for all of them.
        """
        return self.cuts((n_clusters,))[n_clusters]

    def cuts(self, n_clusters_list: Iterable[int]) -> Dict[int, List[int]]:
        """Return ``{k: labels}`` for every requested cluster count ``k``.

        All requested cuts are produced in a single incremental replay of the
        merge sequence (one union-find pass), instead of re-cutting the
        dendrogram from scratch per ``k`` — the silhouette sweep over
        ``k = 2..n/2`` drops from O(n^2 · merges) to O(n · merges).
        Each cut's labels are identical to what a fresh per-``k`` cut yields.
        """
        n = self.n_items
        wanted = sorted({int(k) for k in n_clusters_list})
        for k in wanted:
            if not 1 <= k <= n:
                raise ValueError(f"n_clusters must be in [1, {n}], got {k}")
        missing = {k for k in wanted if k not in self._cut_cache}
        if missing:
            parent = list(range(n + len(self.merges)))

            def find(x: int) -> int:
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                return x

            def record(k: int) -> None:
                roots = [find(i) for i in range(n)]
                relabel: Dict[int, int] = {}
                labels = []
                for root in roots:
                    if root not in relabel:
                        relabel[root] = len(relabel)
                    labels.append(relabel[root])
                self._cut_cache[k] = labels

            if n in missing:
                record(n)
            remaining = n
            stop_at = min(missing)
            for step, merge in enumerate(self.merges):
                if remaining <= stop_at:
                    break
                new_cluster = n + step
                parent[find(merge.left)] = new_cluster
                parent[find(merge.right)] = new_cluster
                remaining -= 1
                if remaining in missing:
                    record(remaining)
        return {k: list(self._cut_cache[k]) for k in wanted}

    def merge_heights(self) -> List[float]:
        """Return the sequence of merge heights (non-decreasing for average linkage)."""
        return [m.height for m in self.merges]


def clusters_as_lists(labels: List[int]) -> List[List[int]]:
    """Group item indices by cluster label, ordered by label."""
    n_clusters = max(labels) + 1 if labels else 0
    groups: List[List[int]] = [[] for _ in range(n_clusters)]
    for idx, label in enumerate(labels):
        groups[label].append(idx)
    return groups
