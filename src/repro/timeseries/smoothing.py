"""Smoothing helpers: moving averages and exponential smoothing.

These back the simple temporal baselines and the workload generator's
slow-varying components.  Everything operates on 1-D NumPy arrays and
preserves series length.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["moving_average", "ewma", "difference", "undifference"]


def moving_average(series: Sequence[float], window: int) -> np.ndarray:
    """Return the trailing moving average with a warm-up ramp.

    The first ``window - 1`` samples average over the shorter available
    prefix, so the output has the same length as the input and no NaNs.
    """
    arr = np.asarray(series, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {arr.shape}")
    if window < 1:
        raise ValueError("window must be >= 1")
    if window == 1 or arr.size == 0:
        return arr.copy()
    cumsum = np.cumsum(arr)
    out = np.empty_like(arr)
    head = min(window, arr.size)
    out[:head] = cumsum[:head] / np.arange(1, head + 1)
    if arr.size > window:
        out[window:] = (cumsum[window:] - cumsum[:-window]) / window
    return out


def ewma(series: Sequence[float], alpha: float) -> np.ndarray:
    """Return the exponentially weighted moving average of a series."""
    arr = np.asarray(series, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {arr.shape}")
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    out = np.empty_like(arr)
    if arr.size == 0:
        return out
    out[0] = arr[0]
    for t in range(1, arr.size):
        out[t] = alpha * arr[t] + (1.0 - alpha) * out[t - 1]
    return out


def difference(series: Sequence[float], lag: int = 1) -> np.ndarray:
    """Return the lag-``lag`` differenced series (length shrinks by ``lag``)."""
    arr = np.asarray(series, dtype=float)
    if lag < 1:
        raise ValueError("lag must be >= 1")
    if arr.size <= lag:
        raise ValueError(f"series of length {arr.size} cannot be differenced at lag {lag}")
    return arr[lag:] - arr[:-lag]


def undifference(
    diffed: Sequence[float], seed: Sequence[float], lag: int = 1
) -> np.ndarray:
    """Invert :func:`difference` given the first ``lag`` original samples."""
    d = np.asarray(diffed, dtype=float)
    s = np.asarray(seed, dtype=float)
    if lag < 1:
        raise ValueError("lag must be >= 1")
    if s.size != lag:
        raise ValueError(f"seed must contain exactly lag={lag} samples, got {s.size}")
    out = np.empty(d.size + lag)
    out[:lag] = s
    for t in range(d.size):
        out[lag + t] = out[t] + d[t]
    return out
