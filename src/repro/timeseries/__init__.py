"""Time-series mathematics substrate for the ATM reproduction.

This subpackage implements, from scratch on top of NumPy, every statistical
primitive the paper's prediction and characterization pipelines rely on:

* :mod:`repro.timeseries.dtw` — dynamic time warping distances (Section III-A).
* :mod:`repro.timeseries.correlation` — Pearson correlation and the
  intra/inter correlation decomposition of Section II-B.
* :mod:`repro.timeseries.clustering` — agglomerative hierarchical clustering
  over precomputed dissimilarity matrices.
* :mod:`repro.timeseries.silhouette` — silhouette scores used to pick the
  number of DTW clusters.
* :mod:`repro.timeseries.regression` — ordinary least squares, variance
  inflation factors, and stepwise elimination (Section III, step 2).
* :mod:`repro.timeseries.metrics` — APE/MAPE and related accuracy metrics.
* :mod:`repro.timeseries.ecdf` — empirical CDFs and box-plot summaries used
  throughout the evaluation figures.
* :mod:`repro.timeseries.smoothing` — moving-average and EWMA helpers.
"""

from repro.timeseries.correlation import (
    CorrelationDecomposition,
    pairwise_correlation_matrix,
    pearson,
)
from repro.timeseries.clustering import HierarchicalClustering, Linkage
from repro.timeseries.dtw import dtw_distance, dtw_distance_matrix, dtw_path
from repro.timeseries.ecdf import BoxplotSummary, Ecdf
from repro.timeseries.metrics import (
    absolute_percentage_errors,
    mean_absolute_percentage_error,
    peak_absolute_percentage_error,
    root_mean_squared_error,
)
from repro.timeseries.regression import (
    OlsFit,
    fit_ols,
    stepwise_eliminate,
    variance_inflation_factors,
)
from repro.timeseries.silhouette import mean_silhouette, silhouette_values

__all__ = [
    "BoxplotSummary",
    "CorrelationDecomposition",
    "Ecdf",
    "HierarchicalClustering",
    "Linkage",
    "OlsFit",
    "absolute_percentage_errors",
    "dtw_distance",
    "dtw_distance_matrix",
    "dtw_path",
    "fit_ols",
    "mean_absolute_percentage_error",
    "mean_silhouette",
    "pairwise_correlation_matrix",
    "peak_absolute_percentage_error",
    "pearson",
    "root_mean_squared_error",
    "silhouette_values",
    "stepwise_eliminate",
    "variance_inflation_factors",
]
