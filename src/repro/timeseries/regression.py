"""Ordinary least squares, variance inflation factors, stepwise elimination.

Section III uses three regression ingredients:

* **OLS** fits express each dependent series as a linear combination of the
  signature series (paper Eq. 1).
* **VIF** (variance inflation factor) flags multicollinearity inside the
  initial signature set: a series whose VIF exceeds 4 is well explained by
  the other signatures.
* **Stepwise regression** then removes such redundant signatures one at a
  time until every remaining signature has VIF <= 4.

All of it is implemented on NumPy's least-squares solver; no statistics
package is required.

Each hot operation has a vectorized twin (gated by ``REPRO_VECTOR_SPATIAL``,
see :mod:`repro.timeseries.vector`):

* All VIFs at once as the diagonal of the inverse correlation matrix of
  the candidate set — the classic Gram identity ``VIF_k = inv(R)[k, k]``,
  mathematically identical to the leave-one-out R^2 definition.
* Stepwise elimination that *downdates* that inverse when a column is
  dropped (Schur complement) instead of refitting ``k`` regressions per
  round — O(k^2) per drop instead of O(T * k^3).
* :func:`fit_ols_multi`, which fits every dependent series of a box in a
  single multi-right-hand-side ``lstsq``.

The vectorized VIF/stepwise paths certify their decisions: whenever the
candidate set is near-singular, a VIF is numerically tied with the
elimination threshold, or two VIFs are tied with each other, they defer to
the reference implementation so the kept/removed sets are always exactly
the reference's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.timeseries.vector import vector_spatial_enabled

__all__ = [
    "OlsFit",
    "fit_ols",
    "fit_ols_multi",
    "r_squared",
    "variance_inflation_factors",
    "stepwise_eliminate",
]

#: ``ss_tot`` at or below this marks a column as constant (matches
#: :func:`fit_ols`'s degenerate-target rule, which yields ``R^2 = 1``).
_CONSTANT_SS = 1e-12

#: Largest ``diag(inv(R))`` the Gram path trusts.  Beyond it the candidate
#: set is so collinear that the Gram and lstsq answers may order columns
#: differently, so the code falls back to the reference implementation.
_GRAM_DIAG_GUARD = 1e8

#: Relative margin under which two VIFs (or a VIF and the threshold) are
#: considered numerically tied — the Gram path cannot certify it makes the
#: same choice as lstsq, so it defers to the reference implementation.
_GRAM_TIE_RTOL = 1e-6


@dataclass(frozen=True)
class OlsFit:
    """Result of an ordinary least squares fit ``y ~ intercept + X @ coef``."""

    intercept: float
    coefficients: np.ndarray
    r2: float
    residual_std: float

    def predict(self, regressors: np.ndarray) -> np.ndarray:
        """Evaluate the fitted model on a ``(n_samples, n_features)`` matrix."""
        x = np.asarray(regressors, dtype=float)
        if x.ndim == 1:
            x = x[:, None]
        if x.shape[1] != self.coefficients.size:
            raise ValueError(
                f"model has {self.coefficients.size} features, got {x.shape[1]}"
            )
        return self.intercept + x @ self.coefficients


def _design(regressors: np.ndarray) -> np.ndarray:
    x = np.asarray(regressors, dtype=float)
    if x.ndim == 1:
        x = x[:, None]
    if x.ndim != 2:
        raise ValueError(f"regressors must be 1-D or 2-D, got shape {x.shape}")
    return x


def fit_ols(target: Sequence[float], regressors: np.ndarray) -> OlsFit:
    """Fit ``target ~ intercept + regressors`` by least squares.

    Parameters
    ----------
    target:
        The dependent series, length ``n_samples``.
    regressors:
        ``(n_samples, n_features)`` matrix (or 1-D for a single regressor).

    Notes
    -----
    Uses :func:`numpy.linalg.lstsq`, which returns the minimum-norm solution
    when the design matrix is rank deficient — fits never fail outright,
    mirroring how a production pipeline must behave on degenerate boxes
    (e.g. constant usage series).
    """
    y = np.asarray(target, dtype=float)
    x = _design(regressors)
    if y.ndim != 1 or y.size != x.shape[0]:
        raise ValueError(
            f"target must be 1-D with length {x.shape[0]}, got shape {y.shape}"
        )
    design = np.column_stack([np.ones(x.shape[0]), x])
    solution, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
    fitted = design @ solution
    residuals = y - fitted
    ss_res = float((residuals * residuals).sum())
    centered = y - y.mean()
    ss_tot = float((centered * centered).sum())
    r2 = 1.0 if ss_tot <= _CONSTANT_SS else 1.0 - ss_res / ss_tot
    dof = max(1, y.size - design.shape[1])
    return OlsFit(
        intercept=float(solution[0]),
        coefficients=solution[1:].copy(),
        r2=float(np.clip(r2, -np.inf, 1.0)),
        residual_std=float(np.sqrt(ss_res / dof)),
    )


def fit_ols_multi(targets: np.ndarray, regressors: np.ndarray) -> List[OlsFit]:
    """Fit every column of ``targets`` against the same regressors at once.

    Equivalent to ``[fit_ols(targets[:, k], regressors) for k in ...]`` but
    solved as one multi-right-hand-side ``lstsq`` (the design matrix is
    factorized once) with the residual statistics batched as column
    reductions.  The reference per-column loop runs when
    ``REPRO_VECTOR_SPATIAL=0``.
    """
    y = np.asarray(targets, dtype=float)
    if y.ndim == 1:
        y = y[:, None]
    if y.ndim != 2:
        raise ValueError(f"targets must be 1-D or 2-D, got shape {y.shape}")
    x = _design(regressors)
    if y.shape[0] != x.shape[0]:
        raise ValueError(
            f"targets must have {x.shape[0]} samples per column, got {y.shape[0]}"
        )
    n_targets = y.shape[1]
    if n_targets == 0:
        return []
    if not vector_spatial_enabled():
        return [fit_ols(y[:, k], x) for k in range(n_targets)]

    design = np.column_stack([np.ones(x.shape[0]), x])
    solution, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
    fitted = design @ solution
    residuals = y - fitted
    ss_res = (residuals * residuals).sum(axis=0)
    centered = y - y.mean(axis=0)
    ss_tot = (centered * centered).sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        r2 = np.where(ss_tot <= _CONSTANT_SS, 1.0, 1.0 - ss_res / ss_tot)
    r2 = np.minimum(r2, 1.0)
    dof = max(1, y.shape[0] - design.shape[1])
    residual_std = np.sqrt(ss_res / dof)
    return [
        OlsFit(
            intercept=float(solution[0, k]),
            coefficients=solution[1:, k].copy(),
            r2=float(r2[k]),
            residual_std=float(residual_std[k]),
        )
        for k in range(n_targets)
    ]


def r_squared(target: Sequence[float], regressors: np.ndarray) -> float:
    """Return the coefficient of determination of an OLS fit."""
    return fit_ols(target, regressors).r2


def _vif_reference(x: np.ndarray) -> np.ndarray:
    """VIFs via the definitional leave-one-out regressions."""
    n_series = x.shape[1]
    vifs = np.empty(n_series)
    for k in range(n_series):
        others = np.delete(x, k, axis=1)
        r2 = np.clip(fit_ols(x[:, k], others).r2, 0.0, 1.0)
        vifs[k] = np.inf if r2 >= 1.0 - 1e-12 else 1.0 / (1.0 - r2)
    return vifs


def _vif_gram(x: np.ndarray, corr: Optional[np.ndarray] = None) -> Optional[np.ndarray]:
    """All VIFs at once from the inverse correlation matrix, or ``None``.

    ``VIF_k = diag(inv(R))_k`` for the correlation matrix ``R`` of the
    non-constant columns; constant columns keep the reference semantics
    (``R^2 = 1`` against any regressors, hence ``inf``).  Returns ``None``
    when ``R`` is too ill-conditioned for the identity to be trusted — the
    caller then uses :func:`_vif_reference`.
    """
    n_series = x.shape[1]
    centered = x - x.mean(axis=0)
    ss = (centered * centered).sum(axis=0)
    constant = ss <= _CONSTANT_SS
    vifs = np.empty(n_series)
    vifs[constant] = np.inf
    active = np.flatnonzero(~constant)
    if active.size == 0:
        return vifs
    if active.size == 1:
        # A lone non-constant column regressed on constants fits nothing.
        vifs[active] = 1.0
        return vifs
    if corr is not None:
        r = np.asarray(corr, dtype=float)[np.ix_(active, active)]
    else:
        normed = centered[:, active] / np.sqrt(ss[active])
        r = normed.T @ normed
    inv = _trusted_inverse(r)
    if inv is None:
        return None
    vifs[active] = np.maximum(np.diagonal(inv), 1.0)
    return vifs


def _trusted_inverse(r: np.ndarray) -> Optional[np.ndarray]:
    """Invert a correlation matrix, or ``None`` when the result is suspect."""
    try:
        inv = np.linalg.inv(r)
    except np.linalg.LinAlgError:
        return None
    diag = np.diagonal(inv)
    if not np.all(np.isfinite(diag)) or np.any(diag <= 0) or np.any(
        diag > _GRAM_DIAG_GUARD
    ):
        return None
    return inv


def variance_inflation_factors(
    series_matrix: np.ndarray, corr: Optional[np.ndarray] = None
) -> np.ndarray:
    """Return the VIF of every column of a ``(n_samples, n_series)`` matrix.

    ``VIF_k = 1 / (1 - R_k^2)`` where ``R_k^2`` comes from regressing column
    ``k`` on all the other columns.  A column perfectly explained by the
    others gets ``numpy.inf``; with fewer than two columns every VIF is 1.

    Parameters
    ----------
    series_matrix:
        ``(n_samples, n_series)`` candidate matrix.
    corr:
        Optional precomputed ``(n_series, n_series)`` Pearson correlation
        matrix of the columns (e.g. the one CBC clustering already built),
        consumed by the vectorized Gram path instead of recomputing it.
    """
    x = _design(series_matrix)
    if x.shape[1] < 2:
        return np.ones(x.shape[1])
    if vector_spatial_enabled():
        vifs = _vif_gram(x, corr)
        if vifs is not None:
            return vifs
    return _vif_reference(x)


def _stepwise_reference(
    x: np.ndarray, vif_threshold: float, min_keep: int
) -> Tuple[List[int], List[int]]:
    """The definitional eliminate loop: refit all VIFs every round."""
    kept = list(range(x.shape[1]))
    removed: List[int] = []
    while len(kept) > max(min_keep, 1):
        sub = x[:, kept]
        vifs = _vif_reference(sub) if sub.shape[1] >= 2 else np.ones(sub.shape[1])
        worst_pos = int(np.argmax(vifs))
        if not (vifs[worst_pos] > vif_threshold):
            break
        removed.append(kept.pop(worst_pos))
    return kept, removed


def _certified_argmax(vifs: np.ndarray, vif_threshold: float) -> Optional[int]:
    """First-max position of ``vifs`` when the Gram path can certify it.

    Returns ``None`` when the decision is numerically ambiguous: the top
    two VIFs tie within :data:`_GRAM_TIE_RTOL`, or the worst VIF sits on
    the elimination threshold.  (``inf`` entries — constant columns — are
    unambiguous: the reference rates them ``inf`` too, and ``np.argmax``
    picks the first in either path.)
    """
    worst_pos = int(np.argmax(vifs))
    worst = float(vifs[worst_pos])
    if abs(worst - vif_threshold) <= _GRAM_TIE_RTOL * max(1.0, vif_threshold):
        return None
    if vifs.size >= 2:
        rest = np.delete(vifs, worst_pos)
        runner_up = float(rest.max())
        if worst - runner_up <= _GRAM_TIE_RTOL * max(1.0, worst):
            return None
    return worst_pos


def _stepwise_gram(
    x: np.ndarray,
    vif_threshold: float,
    min_keep: int,
    corr: Optional[np.ndarray],
) -> Optional[Tuple[List[int], List[int]]]:
    """Stepwise elimination on the inverse correlation matrix, or ``None``.

    The inverse is computed once over the non-constant candidate columns and
    *downdated* by a Schur complement whenever a column is dropped, so each
    round costs O(k^2) instead of k full regressions.  Constant columns are
    eliminated first (their VIF is ``inf`` in both paths, and ``argmax``
    picks the first).  Any round the Gram identity cannot certify — see
    :func:`_certified_argmax` and :func:`_trusted_inverse` — aborts to the
    reference implementation, which redoes the elimination from scratch.
    """
    floor = max(min_keep, 1)
    kept = list(range(x.shape[1]))
    removed: List[int] = []
    centered = x - x.mean(axis=0)
    ss = (centered * centered).sum(axis=0)
    non_constant = [c for c in kept if ss[c] > _CONSTANT_SS]

    # Certify the non-constant candidates *before* touching the constants:
    # a perfectly collinear column is rated inf by the reference and could
    # precede a constant in its removal order, so an untrustworthy inverse
    # means the whole elimination belongs to the reference path.
    inv: Optional[np.ndarray] = None
    if len(non_constant) >= 2:
        if corr is not None:
            r = np.asarray(corr, dtype=float)[np.ix_(non_constant, non_constant)]
        else:
            normed = centered[:, non_constant] / np.sqrt(ss[non_constant])
            r = normed.T @ normed
        inv = _trusted_inverse(r)
        if inv is None:
            return None

    # A trusted inverse bounds every non-constant VIF below the Gram guard,
    # far under the reference's inf cutoff — so the infs are exactly the
    # constant columns, and the reference removes them front-to-back.
    while len(kept) > floor:
        constant_pos = next(
            (p for p, c in enumerate(kept) if ss[c] <= _CONSTANT_SS), None
        )
        if constant_pos is None:
            break
        removed.append(kept.pop(constant_pos))

    if len(kept) <= floor or len(kept) < 2 or inv is None:
        return kept, removed

    while len(kept) > floor:
        vifs = np.maximum(np.diagonal(inv), 1.0)
        worst_pos = _certified_argmax(vifs, vif_threshold)
        if worst_pos is None:
            return None
        if not (vifs[worst_pos] > vif_threshold):
            break
        removed.append(kept.pop(worst_pos))
        if len(kept) < 2:
            break
        # Downdating: the inverse of R with row/column p removed is
        # E - c c^T / d, with E/c/d the blocks of the current inverse.
        keep_mask = np.arange(inv.shape[0]) != worst_pos
        column = inv[keep_mask, worst_pos]
        pivot = inv[worst_pos, worst_pos]
        inv = inv[np.ix_(keep_mask, keep_mask)] - np.outer(column, column) / pivot
        diag = np.diagonal(inv)
        if not np.all(np.isfinite(diag)) or np.any(diag <= 0) or np.any(
            diag > _GRAM_DIAG_GUARD
        ):
            return None
    return kept, removed


def stepwise_eliminate(
    series_matrix: np.ndarray,
    vif_threshold: float = 4.0,
    min_keep: int = 1,
    corr: Optional[np.ndarray] = None,
) -> Tuple[List[int], List[int]]:
    """Iteratively drop the most collinear column until all VIFs pass.

    This is the paper's "step 2": after clustering produces an initial
    signature set, any member with ``VIF > 4`` is a linear combination of the
    others and can be demoted to a dependent series.

    Parameters
    ----------
    series_matrix:
        ``(n_samples, n_series)`` matrix of candidate signature series.
    vif_threshold:
        Keep removing while some column's VIF exceeds this (paper uses 4).
    min_keep:
        Never shrink the kept set below this size.
    corr:
        Optional precomputed Pearson correlation matrix of the columns for
        the vectorized path (see :func:`variance_inflation_factors`).

    Returns
    -------
    (kept, removed):
        Column indices that remain signatures, and those demoted, both in
        terms of the input matrix's column order.  ``removed`` is ordered by
        elimination step (most collinear first).
    """
    x = _design(series_matrix)
    if vif_threshold <= 1.0:
        raise ValueError("vif_threshold must exceed 1.0")
    if vector_spatial_enabled():
        result = _stepwise_gram(x, vif_threshold, min_keep, corr)
        if result is not None:
            return result
    return _stepwise_reference(x, vif_threshold, min_keep)


def fit_dependent_models(
    signature_matrix: np.ndarray,
    dependent_matrix: np.ndarray,
) -> List[OlsFit]:
    """Fit one OLS model per dependent series against the signature matrix.

    Convenience wrapper used by the spatial prediction models: columns of
    ``dependent_matrix`` are regressed on the columns of ``signature_matrix``
    in one multi-right-hand-side solve (see :func:`fit_ols_multi`).
    """
    sig = _design(signature_matrix)
    dep = _design(dependent_matrix)
    if sig.shape[0] != dep.shape[0]:
        raise ValueError("signature and dependent matrices need equal sample counts")
    return fit_ols_multi(dep, sig)
