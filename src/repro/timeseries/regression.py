"""Ordinary least squares, variance inflation factors, stepwise elimination.

Section III uses three regression ingredients:

* **OLS** fits express each dependent series as a linear combination of the
  signature series (paper Eq. 1).
* **VIF** (variance inflation factor) flags multicollinearity inside the
  initial signature set: a series whose VIF exceeds 4 is well explained by
  the other signatures.
* **Stepwise regression** then removes such redundant signatures one at a
  time until every remaining signature has VIF <= 4.

All of it is implemented on NumPy's least-squares solver; no statistics
package is required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "OlsFit",
    "fit_ols",
    "r_squared",
    "variance_inflation_factors",
    "stepwise_eliminate",
]


@dataclass(frozen=True)
class OlsFit:
    """Result of an ordinary least squares fit ``y ~ intercept + X @ coef``."""

    intercept: float
    coefficients: np.ndarray
    r2: float
    residual_std: float

    def predict(self, regressors: np.ndarray) -> np.ndarray:
        """Evaluate the fitted model on a ``(n_samples, n_features)`` matrix."""
        x = np.asarray(regressors, dtype=float)
        if x.ndim == 1:
            x = x[:, None]
        if x.shape[1] != self.coefficients.size:
            raise ValueError(
                f"model has {self.coefficients.size} features, got {x.shape[1]}"
            )
        return self.intercept + x @ self.coefficients


def _design(regressors: np.ndarray) -> np.ndarray:
    x = np.asarray(regressors, dtype=float)
    if x.ndim == 1:
        x = x[:, None]
    if x.ndim != 2:
        raise ValueError(f"regressors must be 1-D or 2-D, got shape {x.shape}")
    return x


def fit_ols(target: Sequence[float], regressors: np.ndarray) -> OlsFit:
    """Fit ``target ~ intercept + regressors`` by least squares.

    Parameters
    ----------
    target:
        The dependent series, length ``n_samples``.
    regressors:
        ``(n_samples, n_features)`` matrix (or 1-D for a single regressor).

    Notes
    -----
    Uses :func:`numpy.linalg.lstsq`, which returns the minimum-norm solution
    when the design matrix is rank deficient — fits never fail outright,
    mirroring how a production pipeline must behave on degenerate boxes
    (e.g. constant usage series).
    """
    y = np.asarray(target, dtype=float)
    x = _design(regressors)
    if y.ndim != 1 or y.size != x.shape[0]:
        raise ValueError(
            f"target must be 1-D with length {x.shape[0]}, got shape {y.shape}"
        )
    design = np.column_stack([np.ones(x.shape[0]), x])
    solution, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
    fitted = design @ solution
    residuals = y - fitted
    ss_res = float((residuals * residuals).sum())
    centered = y - y.mean()
    ss_tot = float((centered * centered).sum())
    r2 = 1.0 if ss_tot <= 1e-12 else 1.0 - ss_res / ss_tot
    dof = max(1, y.size - design.shape[1])
    return OlsFit(
        intercept=float(solution[0]),
        coefficients=solution[1:].copy(),
        r2=float(np.clip(r2, -np.inf, 1.0)),
        residual_std=float(np.sqrt(ss_res / dof)),
    )


def r_squared(target: Sequence[float], regressors: np.ndarray) -> float:
    """Return the coefficient of determination of an OLS fit."""
    return fit_ols(target, regressors).r2


def variance_inflation_factors(series_matrix: np.ndarray) -> np.ndarray:
    """Return the VIF of every column of a ``(n_samples, n_series)`` matrix.

    ``VIF_k = 1 / (1 - R_k^2)`` where ``R_k^2`` comes from regressing column
    ``k`` on all the other columns.  A column perfectly explained by the
    others gets ``numpy.inf``; with fewer than two columns every VIF is 1.
    """
    x = _design(series_matrix)
    n_series = x.shape[1]
    if n_series < 2:
        return np.ones(n_series)
    vifs = np.empty(n_series)
    for k in range(n_series):
        others = np.delete(x, k, axis=1)
        r2 = np.clip(fit_ols(x[:, k], others).r2, 0.0, 1.0)
        vifs[k] = np.inf if r2 >= 1.0 - 1e-12 else 1.0 / (1.0 - r2)
    return vifs


def stepwise_eliminate(
    series_matrix: np.ndarray,
    vif_threshold: float = 4.0,
    min_keep: int = 1,
) -> Tuple[List[int], List[int]]:
    """Iteratively drop the most collinear column until all VIFs pass.

    This is the paper's "step 2": after clustering produces an initial
    signature set, any member with ``VIF > 4`` is a linear combination of the
    others and can be demoted to a dependent series.

    Parameters
    ----------
    series_matrix:
        ``(n_samples, n_series)`` matrix of candidate signature series.
    vif_threshold:
        Keep removing while some column's VIF exceeds this (paper uses 4).
    min_keep:
        Never shrink the kept set below this size.

    Returns
    -------
    (kept, removed):
        Column indices that remain signatures, and those demoted, both in
        terms of the input matrix's column order.  ``removed`` is ordered by
        elimination step (most collinear first).
    """
    x = _design(series_matrix)
    if vif_threshold <= 1.0:
        raise ValueError("vif_threshold must exceed 1.0")
    kept = list(range(x.shape[1]))
    removed: List[int] = []
    while len(kept) > max(min_keep, 1):
        vifs = variance_inflation_factors(x[:, kept])
        worst_pos = int(np.argmax(vifs))
        if not (vifs[worst_pos] > vif_threshold):
            break
        removed.append(kept.pop(worst_pos))
    return kept, removed


def fit_dependent_models(
    signature_matrix: np.ndarray,
    dependent_matrix: np.ndarray,
) -> List[OlsFit]:
    """Fit one OLS model per dependent series against the signature matrix.

    Convenience wrapper used by the spatial prediction models: columns of
    ``dependent_matrix`` are regressed on the columns of ``signature_matrix``.
    """
    sig = _design(signature_matrix)
    dep = _design(dependent_matrix)
    if sig.shape[0] != dep.shape[0]:
        raise ValueError("signature and dependent matrices need equal sample counts")
    return [fit_ols(dep[:, k], sig) for k in range(dep.shape[1])]
