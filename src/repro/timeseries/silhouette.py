"""Silhouette scores for choosing the number of clusters (paper Eq. 3).

For series ``i`` the silhouette value is

    s(i) = (b(i) - a(i)) / max(a(i), b(i))

where ``a(i)`` is the mean dissimilarity of ``i`` to the other members of its
own cluster and ``b(i)`` is the lowest mean dissimilarity of ``i`` to the
members of any other cluster.  The paper averages ``s(i)`` over all series and
picks the cluster count with the maximal average.

Singleton clusters get ``s(i) = 0`` following Rousseeuw's convention (the
value is undefined; zero is neutral).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["silhouette_values", "mean_silhouette", "best_cluster_count"]


def silhouette_values(distances: np.ndarray, labels: Sequence[int]) -> np.ndarray:
    """Return the per-item silhouette values for a flat clustering.

    Parameters
    ----------
    distances:
        Symmetric ``(n, n)`` dissimilarity matrix.
    labels:
        Cluster label for each of the ``n`` items.
    """
    d = np.asarray(distances, dtype=float)
    lab = np.asarray(labels, dtype=int)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError(f"distance matrix must be square, got {d.shape}")
    if lab.shape != (d.shape[0],):
        raise ValueError("labels must have one entry per item")
    n = d.shape[0]
    unique = np.unique(lab)
    if unique.size < 2:
        # A single cluster has no "nearest other cluster"; silhouettes are 0.
        return np.zeros(n)

    values = np.zeros(n)
    members = {c: np.flatnonzero(lab == c) for c in unique}
    for i in range(n):
        own = members[lab[i]]
        if own.size <= 1:
            values[i] = 0.0
            continue
        a = d[i, own[own != i]].mean()
        b = min(d[i, members[c]].mean() for c in unique if c != lab[i])
        denom = max(a, b)
        values[i] = 0.0 if denom <= 0 else (b - a) / denom
    return values


def mean_silhouette(distances: np.ndarray, labels: Sequence[int]) -> float:
    """Return the average silhouette value over all items."""
    return float(silhouette_values(distances, labels).mean())


def best_cluster_count(
    distances: np.ndarray,
    labelings: Sequence[Sequence[int]],
    counts: Sequence[int],
) -> int:
    """Return the cluster count whose labeling maximizes mean silhouette.

    ``labelings[k]`` must be the flat labels obtained for ``counts[k]``
    clusters.  Ties are resolved toward *fewer* clusters, matching the
    paper's goal of a minimal signature set.
    """
    if len(labelings) != len(counts) or not counts:
        raise ValueError("labelings and counts must be equal-length and non-empty")
    scored = [
        (mean_silhouette(distances, labels), -count, count)
        for labels, count in zip(labelings, counts)
    ]
    _, __, best = max(scored)
    return best
