"""Silhouette scores for choosing the number of clusters (paper Eq. 3).

For series ``i`` the silhouette value is

    s(i) = (b(i) - a(i)) / max(a(i), b(i))

where ``a(i)`` is the mean dissimilarity of ``i`` to the other members of its
own cluster and ``b(i)`` is the lowest mean dissimilarity of ``i`` to the
members of any other cluster.  The paper averages ``s(i)`` over all series and
picks the cluster count with the maximal average.

Singleton clusters get ``s(i) = 0`` following Rousseeuw's convention (the
value is undefined; zero is neutral).

Two implementations coexist (see :mod:`repro.timeseries.vector`): the
reference per-item loop, and a vectorized path that forms a cluster
indicator matrix and obtains every item-to-cluster distance sum as one
``distances @ indicator`` matmul.  For the silhouette sweep over all
dendrogram cuts, :func:`mean_silhouettes_for_cuts` does the ``(n, n)``
matmul once against the finest cut and aggregates coarser cuts from it —
one small matmul per cut instead of O(n^2) Python iterations per cut.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.timeseries.vector import vector_spatial_enabled

__all__ = [
    "silhouette_values",
    "mean_silhouette",
    "mean_silhouettes_for_cuts",
    "best_silhouette_cut",
    "best_cluster_count",
]


def _validate(distances: np.ndarray, labels: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    d = np.asarray(distances, dtype=float)
    lab = np.asarray(labels, dtype=int)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError(f"distance matrix must be square, got {d.shape}")
    if lab.shape != (d.shape[0],):
        raise ValueError("labels must have one entry per item")
    return d, lab


def _silhouette_values_reference(d: np.ndarray, lab: np.ndarray) -> np.ndarray:
    """Per-item silhouettes via the definitional per-item loop."""
    n = d.shape[0]
    unique = np.unique(lab)
    if unique.size < 2:
        # A single cluster has no "nearest other cluster"; silhouettes are 0.
        return np.zeros(n)

    values = np.zeros(n)
    members = {c: np.flatnonzero(lab == c) for c in unique}
    for i in range(n):
        own = members[lab[i]]
        if own.size <= 1:
            values[i] = 0.0
            continue
        a = d[i, own[own != i]].mean()
        b = min(d[i, members[c]].mean() for c in unique if c != lab[i])
        denom = max(a, b)
        values[i] = 0.0 if denom <= 0 else (b - a) / denom
    return values


def _silhouette_from_sums(
    sums: np.ndarray, sizes: np.ndarray, own: np.ndarray, self_distance: np.ndarray
) -> np.ndarray:
    """Per-item silhouettes from precomputed item-to-cluster distance sums.

    Parameters
    ----------
    sums:
        ``(n, k)`` matrix: total distance from item ``i`` to all members of
        cluster ``c`` (including ``i`` itself for its own cluster).
    sizes:
        ``(k,)`` cluster sizes.
    own:
        ``(n,)`` cluster index of each item (column into ``sums``).
    self_distance:
        ``(n,)`` diagonal of the distance matrix, subtracted from the own
        cluster's sum so ``a(i)`` averages over the *other* members only.
    """
    n, k = sums.shape
    if k < 2:
        return np.zeros(n)
    rows = np.arange(n)
    own_sizes = sizes[own]
    with np.errstate(invalid="ignore", divide="ignore"):
        a = (sums[rows, own] - self_distance) / np.maximum(own_sizes - 1, 1)
        means = sums / sizes[None, :]
    means[rows, own] = np.inf
    b = means.min(axis=1)
    denom = np.maximum(a, b)
    with np.errstate(invalid="ignore", divide="ignore"):
        values = np.where(denom > 0, (b - a) / denom, 0.0)
    return np.where(own_sizes <= 1, 0.0, values)


def _silhouette_values_vector(d: np.ndarray, lab: np.ndarray) -> np.ndarray:
    """Per-item silhouettes via one ``d @ indicator`` matmul."""
    n = d.shape[0]
    _, inverse = np.unique(lab, return_inverse=True)
    k = int(inverse.max()) + 1 if n else 0
    if k < 2:
        return np.zeros(n)
    onehot = np.zeros((n, k))
    onehot[np.arange(n), inverse] = 1.0
    sums = d @ onehot
    sizes = onehot.sum(axis=0)
    return _silhouette_from_sums(sums, sizes, inverse, np.diagonal(d).copy())


def silhouette_values(distances: np.ndarray, labels: Sequence[int]) -> np.ndarray:
    """Return the per-item silhouette values for a flat clustering.

    Parameters
    ----------
    distances:
        Symmetric ``(n, n)`` dissimilarity matrix.
    labels:
        Cluster label for each of the ``n`` items.
    """
    d, lab = _validate(distances, labels)
    if vector_spatial_enabled():
        return _silhouette_values_vector(d, lab)
    return _silhouette_values_reference(d, lab)


def mean_silhouette(distances: np.ndarray, labels: Sequence[int]) -> float:
    """Return the average silhouette value over all items."""
    return float(silhouette_values(distances, labels).mean())


def _cut_sums(
    d: np.ndarray, labelings: Mapping[int, Sequence[int]]
) -> Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Item-to-cluster distance sums for every cut, sharing one big matmul.

    Dendrogram cuts are nested: the finest requested cut refines every
    coarser one, so ``d @ onehot(finest)`` is computed once and each
    coarser cut's sums follow from a cheap ``(n, k_max) @ (k_max, k)``
    aggregation.  Non-nested labelings (not from one merge tree) are
    detected and scored with their own matmul instead.
    """
    n = d.shape[0]
    by_k: Dict[int, np.ndarray] = {}
    for k in labelings:
        lab = np.asarray(labelings[k], dtype=int)
        if lab.shape != (n,):
            raise ValueError("labels must have one entry per item")
        _, by_k[k] = np.unique(lab, return_inverse=True)

    finest_k = max(by_k, key=lambda k: int(by_k[k].max()))
    fine = by_k[finest_k]
    n_fine = int(fine.max()) + 1
    onehot = np.zeros((n, n_fine))
    onehot[np.arange(n), fine] = 1.0
    fine_sums = d @ onehot
    fine_sizes = onehot.sum(axis=0)

    out: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    for k, lab in by_k.items():
        n_clusters = int(lab.max()) + 1
        mapping = np.full(n_fine, -1, dtype=int)
        mapping[fine] = lab
        if np.array_equal(mapping[fine], lab) and (mapping >= 0).all():
            merge = np.zeros((n_fine, n_clusters))
            merge[np.arange(n_fine), mapping] = 1.0
            out[k] = (fine_sums @ merge, fine_sizes @ merge, lab)
        else:  # not a refinement of the finest cut: score it directly
            oh = np.zeros((n, n_clusters))
            oh[np.arange(n), lab] = 1.0
            out[k] = (d @ oh, oh.sum(axis=0), lab)
    return out


def mean_silhouettes_for_cuts(
    distances: np.ndarray, labelings: Mapping[int, Sequence[int]]
) -> Dict[int, float]:
    """Return ``{k: mean silhouette}`` for many cuts of one distance matrix.

    ``labelings`` maps each candidate cluster count to its flat labels —
    exactly the shape :meth:`HierarchicalClustering.cuts` returns, which is
    the intended producer.  The vectorized path shares the expensive
    ``(n, n)`` matmul across all (nested) cuts; the reference path scores
    each cut with the per-item loop.
    """
    d = np.asarray(distances, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError(f"distance matrix must be square, got {d.shape}")
    if not labelings:
        return {}
    if not vector_spatial_enabled():
        return {
            k: float(_silhouette_values_reference(*_validate(d, labelings[k])).mean())
            for k in labelings
        }
    self_distance = np.diagonal(d).copy()
    return {
        k: float(_silhouette_from_sums(sums, sizes, lab, self_distance).mean())
        for k, (sums, sizes, lab) in _cut_sums(d, labelings).items()
    }


def best_silhouette_cut(
    distances: np.ndarray, labelings: Mapping[int, Sequence[int]]
) -> Tuple[float, int, List[int]]:
    """Return ``(score, k, labels)`` of the cut with the best mean silhouette.

    Ties within ``1e-12`` are resolved toward *fewer* clusters, matching the
    paper's goal of a minimal signature set (and the historical sweep loops
    in the DTW/feature clustering modules).
    """
    if not labelings:
        raise ValueError("need at least one candidate cut")
    scores = mean_silhouettes_for_cuts(distances, labelings)
    best: Optional[Tuple[float, int, List[int]]] = None
    for k in sorted(labelings):
        if best is None or scores[k] > best[0] + 1e-12:
            best = (scores[k], k, list(labelings[k]))
    assert best is not None
    return best


def best_cluster_count(
    distances: np.ndarray,
    labelings: Sequence[Sequence[int]],
    counts: Sequence[int],
) -> int:
    """Return the cluster count whose labeling maximizes mean silhouette.

    ``labelings[k]`` must be the flat labels obtained for ``counts[k]``
    clusters.  Ties are resolved toward *fewer* clusters, matching the
    paper's goal of a minimal signature set.
    """
    if len(labelings) != len(counts) or not counts:
        raise ValueError("labelings and counts must be equal-length and non-empty")
    scored = [
        (mean_silhouette(distances, labels), -count, count)
        for labels, count in zip(labelings, counts)
    ]
    _, __, best = max(scored)
    return best
