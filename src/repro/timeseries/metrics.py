"""Prediction accuracy metrics used by the paper's evaluation.

The paper's headline metric is the absolute percentage error

    APE = |actual - fitted| / actual

averaged over all ticketing windows (Figs. 6, 7, 9) and, separately, over
*peak* windows only — those whose actual usage exceeds the ticket threshold
(Fig. 9's "Peak" CDFs).  Windows with zero (or near-zero) actual value are
excluded from APE, the standard convention that keeps the metric finite.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "absolute_percentage_errors",
    "finite_mean",
    "finite_std",
    "finite_values",
    "mean_absolute_percentage_error",
    "peak_absolute_percentage_error",
    "root_mean_squared_error",
    "mean_absolute_error",
    "symmetric_mape",
]

_EPS = 1e-9


def finite_values(values: Sequence[float]) -> np.ndarray:
    """Return the finite entries of ``values`` as a float array.

    Degenerate boxes legitimately produce ``nan`` metrics (no peaks, no
    tickets, all-zero demand); every fleet-level aggregate drops them the
    same way through this helper.
    """
    arr = np.asarray(list(values), dtype=float)
    return arr[np.isfinite(arr)]


def finite_mean(values: Sequence[float]) -> float:
    """Mean over the finite entries; ``nan`` when none are finite."""
    finite = finite_values(values)
    return float(finite.mean()) if finite.size else float("nan")


def finite_std(values: Sequence[float]) -> float:
    """Population std over the finite entries; ``nan`` when none are finite."""
    finite = finite_values(values)
    return float(finite.std()) if finite.size else float("nan")


def _pair(actual: Sequence[float], predicted: Sequence[float]):
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape or a.ndim != 1:
        raise ValueError(
            f"actual and predicted must be equal-length 1-D arrays, got {a.shape} and {p.shape}"
        )
    if a.size == 0:
        raise ValueError("series must be non-empty")
    return a, p


def absolute_percentage_errors(
    actual: Sequence[float], predicted: Sequence[float]
) -> np.ndarray:
    """Return the per-sample APE, with near-zero actual samples dropped."""
    a, p = _pair(actual, predicted)
    mask = np.abs(a) > _EPS
    if not mask.any():
        return np.array([])
    return np.abs(a[mask] - p[mask]) / np.abs(a[mask])


def mean_absolute_percentage_error(
    actual: Sequence[float], predicted: Sequence[float], as_percent: bool = True
) -> float:
    """Return mean APE; ``nan`` when every actual sample is ~zero."""
    errors = absolute_percentage_errors(actual, predicted)
    if errors.size == 0:
        return float("nan")
    value = float(errors.mean())
    return value * 100.0 if as_percent else value


def peak_absolute_percentage_error(
    actual: Sequence[float],
    predicted: Sequence[float],
    peak_threshold: float,
    as_percent: bool = True,
) -> float:
    """Return mean APE restricted to windows where ``actual > peak_threshold``.

    Fig. 9 reports this with the 60% usage threshold: accuracy on exactly the
    windows that matter for ticketing.  Returns ``nan`` when the series never
    peaks.
    """
    a, p = _pair(actual, predicted)
    mask = a > peak_threshold
    if not mask.any():
        return float("nan")
    return mean_absolute_percentage_error(a[mask], p[mask], as_percent=as_percent)


def root_mean_squared_error(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Return the RMSE between two series."""
    a, p = _pair(actual, predicted)
    diff = a - p
    return float(np.sqrt((diff * diff).mean()))


def mean_absolute_error(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Return the MAE between two series."""
    a, p = _pair(actual, predicted)
    return float(np.abs(a - p).mean())


def symmetric_mape(
    actual: Sequence[float], predicted: Sequence[float], as_percent: bool = True
) -> float:
    """Return the symmetric MAPE (robust companion metric, not in the paper)."""
    a, p = _pair(actual, predicted)
    denom = (np.abs(a) + np.abs(p)) / 2.0
    mask = denom > _EPS
    if not mask.any():
        return float("nan")
    value = float((np.abs(a[mask] - p[mask]) / denom[mask]).mean())
    return value * 100.0 if as_percent else value
