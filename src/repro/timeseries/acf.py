"""Autocorrelation and summary features of time series.

Supports the feature-based clustering alternative the paper cites
(Fulcher & Jones [11]): instead of comparing raw series (DTW) or their
correlations (CBC), series are embedded into a small feature vector —
moments, autocorrelation structure, seasonality strength — and clustered in
feature space.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["autocorrelation", "feature_vector", "seasonal_strength"]


def autocorrelation(series: Sequence[float], lag: int) -> float:
    """Sample autocorrelation at a given lag (0 for degenerate inputs)."""
    arr = np.asarray(series, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {arr.shape}")
    if lag < 0:
        raise ValueError("lag must be non-negative")
    if lag == 0:
        return 1.0
    if arr.size <= lag + 1:
        return 0.0
    centered = arr - arr.mean()
    denom = float((centered * centered).sum())
    if denom <= 1e-12:
        return 0.0
    num = float((centered[:-lag] * centered[lag:]).sum())
    return float(np.clip(num / denom, -1.0, 1.0))


def seasonal_strength(series: Sequence[float], period: int) -> float:
    """Share of variance explained by the per-slot seasonal means, in [0, 1]."""
    arr = np.asarray(series, dtype=float)
    if period < 2:
        raise ValueError("period must be >= 2")
    if arr.size < 2 * period:
        return 0.0
    total_var = arr.var()
    if total_var <= 1e-12:
        return 0.0
    n_full = (arr.size // period) * period
    folded = arr[:n_full].reshape(-1, period)
    slot_means = folded.mean(axis=0)
    seasonal_var = slot_means.var()
    return float(np.clip(seasonal_var / total_var, 0.0, 1.0))


def feature_vector(series: Sequence[float], period: int = 96) -> np.ndarray:
    """Embed a series into a compact, scale-aware feature vector.

    Features (in order):

    0. mean level,
    1. standard deviation,
    2. coefficient of variation (dispersion relative to level),
    3. skewness (burstiness direction),
    4. lag-1 autocorrelation (smoothness),
    5. lag-``period/4`` autocorrelation (intra-day memory),
    6. seasonal strength at ``period`` (diurnal repeatability),
    7. peak-to-mean ratio (spikiness).

    The first two features carry the scale; clustering normalizes columns.
    """
    arr = np.asarray(series, dtype=float)
    if arr.ndim != 1 or arr.size < 4:
        raise ValueError("series must be 1-D with at least 4 samples")
    mean = float(arr.mean())
    std = float(arr.std())
    cv = std / mean if abs(mean) > 1e-12 else 0.0
    if std > 1e-12:
        skew = float((((arr - mean) / std) ** 3).mean())
    else:
        skew = 0.0
    peak_ratio = float(arr.max() / mean) if abs(mean) > 1e-12 else 0.0
    return np.array(
        [
            mean,
            std,
            cv,
            skew,
            autocorrelation(arr, 1),
            autocorrelation(arr, max(1, period // 4)),
            seasonal_strength(arr, period) if arr.size >= 2 * period else 0.0,
            peak_ratio,
        ]
    )
