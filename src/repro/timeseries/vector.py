"""Environment gate for the vectorized spatial-search linear algebra.

The spatial half of the two-step signature search — the silhouette sweep,
the VIF/stepwise elimination, the per-dependent OLS fits and the spatial
reconstruction — has two implementations everywhere it is hot:

* a **reference** scalar path (per-item Python loops over 1-D NumPy
  calls), which defines the semantics, and
* a **vectorized** path (batched matmuls, Gram-matrix identities,
  multi-RHS solves) that computes the same quantities in a handful of
  BLAS calls.

The vectorized path is enabled by default.  Set ``REPRO_VECTOR_SPATIAL=0``
to force the reference implementations — useful for debugging, for
bisecting a numerical question, and as the baseline the equivalence
benches compare against (``benchmarks/bench_spatial_vector.py``).

Where the vectorized result cannot be certified to reproduce the
reference *decisions* (near-singular candidate sets, VIF ties within
numerical noise), the vectorized code falls back to the reference path on
its own — the gate selects the fast path, never different answers.
"""

from __future__ import annotations

__all__ = ["VECTOR_ENV_VAR", "vector_spatial_enabled"]

#: Environment variable gating the vectorized spatial kernels (default: on;
#: parsed by :mod:`repro.core.runtime`).
VECTOR_ENV_VAR = "REPRO_VECTOR_SPATIAL"


def vector_spatial_enabled() -> bool:
    """Whether the vectorized spatial kernels are enabled (``REPRO_VECTOR_SPATIAL``)."""
    # Lazy import: timeseries must stay importable without repro.core.
    from repro.core.runtime import vector_spatial_enabled as _enabled

    return _enabled()
