"""Pearson correlation utilities and the paper's intra/inter decomposition.

Section II-B quantifies spatial dependency among co-located VMs with four
families of Pearson correlation coefficients computed per box:

* **intra-CPU** — between any pair of CPU usage series,
* **intra-RAM** — between any pair of RAM usage series,
* **inter-all** — between any CPU series and any RAM series (any VM pair),
* **inter-pair** — between the CPU and RAM series *of the same VM*.

For each box the paper reports the median of each family and then plots the
CDF of those medians across boxes (Fig. 3).  :class:`CorrelationDecomposition`
computes the per-box medians; the fleet-level CDFs live in
:mod:`repro.tickets.characterization`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "pearson",
    "pairwise_correlation_matrix",
    "CorrelationDecomposition",
    "decompose_box_correlations",
]


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Return the Pearson correlation coefficient of two equal-length series.

    Degenerate inputs (a constant series) have undefined correlation; this
    returns ``0.0`` for them, which is the conservative choice for the
    paper's use (a constant series carries no spatial signal to exploit).
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError(
            f"series must be one-dimensional with equal length, got {xa.shape} and {ya.shape}"
        )
    if xa.size < 2:
        raise ValueError("correlation requires at least two samples")
    xd = xa - xa.mean()
    yd = ya - ya.mean()
    denom = np.sqrt((xd * xd).sum() * (yd * yd).sum())
    if denom <= 1e-12:
        return 0.0
    return float(np.clip((xd * yd).sum() / denom, -1.0, 1.0))


def pairwise_correlation_matrix(series: Sequence[Sequence[float]]) -> np.ndarray:
    """Return the symmetric Pearson correlation matrix for many series.

    Constant series yield zero correlation against everything (and ``1.0`` on
    the diagonal, by convention).
    """
    data = np.asarray(series, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"expected a 2-D (n_series, n_samples) array, got {data.shape}")
    n = data.shape[0]
    centered = data - data.mean(axis=1, keepdims=True)
    norms = np.sqrt((centered * centered).sum(axis=1))
    corr = np.eye(n)
    safe = norms > 1e-12
    if safe.any():
        normed = np.zeros_like(centered)
        normed[safe] = centered[safe] / norms[safe, None]
        corr = normed @ normed.T
        np.fill_diagonal(corr, 1.0)
    return np.clip(corr, -1.0, 1.0)


def _median_or_nan(values: Sequence[float]) -> float:
    arr = np.asarray(list(values), dtype=float)
    return float(np.median(arr)) if arr.size else float("nan")


@dataclass(frozen=True)
class CorrelationDecomposition:
    """Per-box median correlations along the paper's four axes.

    Any component is ``nan`` when the box does not have enough series to form
    at least one pair of the corresponding type (e.g. a single-VM box has no
    intra-CPU pairs).
    """

    intra_cpu: float
    intra_ram: float
    inter_all: float
    inter_pair: float

    def as_dict(self) -> dict:
        return {
            "intra_cpu": self.intra_cpu,
            "intra_ram": self.intra_ram,
            "inter_all": self.inter_all,
            "inter_pair": self.inter_pair,
        }


def decompose_box_correlations(
    cpu_series: Sequence[Sequence[float]],
    ram_series: Sequence[Sequence[float]],
    absolute: bool = False,
) -> CorrelationDecomposition:
    """Compute the Section II-B correlation decomposition for one box.

    Parameters
    ----------
    cpu_series, ram_series:
        Usage series of the box's co-located VMs; ``cpu_series[i]`` and
        ``ram_series[i]`` must belong to the same VM ``i``.
    absolute:
        When true, use ``|rho|`` instead of signed coefficients.  The paper
        plots CDFs over ``[0, 1]`` which is consistent with either choice for
        its (mostly positively correlated) data; signed is the default.
    """
    if len(cpu_series) != len(ram_series):
        raise ValueError(
            f"need one CPU and one RAM series per VM, got {len(cpu_series)} CPU "
            f"and {len(ram_series)} RAM series"
        )
    m = len(cpu_series)
    if m == 0:
        raise ValueError("box has no VMs")

    def maybe_abs(value: float) -> float:
        return abs(value) if absolute else value

    intra_cpu = [
        maybe_abs(pearson(cpu_series[i], cpu_series[j]))
        for i in range(m)
        for j in range(i + 1, m)
    ]
    intra_ram = [
        maybe_abs(pearson(ram_series[i], ram_series[j]))
        for i in range(m)
        for j in range(i + 1, m)
    ]
    # "inter-all": any CPU series against any RAM series, including the pair
    # belonging to the same VM (the paper's "from any pair").
    inter_all = [
        maybe_abs(pearson(cpu_series[i], ram_series[j]))
        for i in range(m)
        for j in range(m)
    ]
    inter_pair = [maybe_abs(pearson(cpu_series[i], ram_series[i])) for i in range(m)]

    return CorrelationDecomposition(
        intra_cpu=_median_or_nan(intra_cpu),
        intra_ram=_median_or_nan(intra_ram),
        inter_all=_median_or_nan(inter_all),
        inter_pair=_median_or_nan(inter_pair),
    )


def count_strong_partners(
    corr: np.ndarray, threshold: float
) -> "tuple[np.ndarray, np.ndarray]":
    """Return, for each series, (#partners with rho >= threshold, their mean rho).

    This is the ranking statistic used by correlation-based clustering
    (Section III-A): series are ranked first by how many other series they are
    strongly correlated with, then by the mean strength of those links.
    Series with no strong partner get a mean of ``0.0``.
    """
    if corr.ndim != 2 or corr.shape[0] != corr.shape[1]:
        raise ValueError(f"corr must be square, got {corr.shape}")
    masked = corr.copy()
    np.fill_diagonal(masked, -np.inf)
    strong = masked >= threshold
    counts = strong.sum(axis=1)
    means = np.zeros(corr.shape[0])
    rows = counts > 0
    if rows.any():
        sums = np.where(strong, masked, 0.0).sum(axis=1)
        means[rows] = sums[rows] / counts[rows]
    return counts.astype(int), means
