"""Virtual resource resizing (paper Section IV).

Given per-VM demand forecasts for a resizing window (one day = 96 ticketing
windows), choose per-VM capacities minimizing usage tickets subject to the
box capacity:

* :mod:`repro.resizing.problem` — the optimization problem R and ticket
  accounting for any allocation.
* :mod:`repro.resizing.mckp` — the Lemma 4.1 transform into a multi-choice
  knapsack problem with the ε discretization factor.
* :mod:`repro.resizing.greedy` — the paper's greedy MTRV solver.
* :mod:`repro.resizing.exact` — brute-force and dynamic-programming exact
  solvers used to validate the greedy's optimality gap.
* :mod:`repro.resizing.baselines` — max-min fairness and the "stingy"
  (peak-demand) allocator.
* :mod:`repro.resizing.actuation` — the cgroups-style actuator interface.
* :mod:`repro.resizing.evaluate` — per-box and fleet-level ticket-reduction
  evaluation (Figs. 8 and 10).
"""

from repro.resizing.baselines import max_min_fairness_allocation, stingy_allocation
from repro.resizing.drf import drf_allocation
from repro.resizing.evaluate import (
    BoxReduction,
    FleetReduction,
    evaluate_fleet_resizing,
    reduction_percent,
)
from repro.resizing.exact import solve_bruteforce, solve_dp
from repro.resizing.greedy import solve_greedy
from repro.resizing.mckp import MckpGroup, MckpInstance, MckpSolution, build_mckp
from repro.resizing.problem import ResizingProblem, tickets_for_allocation

__all__ = [
    "BoxReduction",
    "FleetReduction",
    "MckpGroup",
    "MckpInstance",
    "MckpSolution",
    "ResizingProblem",
    "build_mckp",
    "drf_allocation",
    "evaluate_fleet_resizing",
    "max_min_fairness_allocation",
    "reduction_percent",
    "solve_bruteforce",
    "solve_dp",
    "solve_greedy",
    "stingy_allocation",
    "tickets_for_allocation",
]
