"""The ticket-minimization problem R (paper Eqs. 4-7).

For one box and one resource: choose per-VM capacities ``C_i`` with
``sum_i C_i <= C`` minimizing ``sum_{i,t} I_{i,t}`` where ``I_{i,t} = 1``
iff ``D_{i,t} > alpha * C_i``.

Practical bounds (Section IV-A.1):

* a *lower bound* per VM so the peak demand of the previous window is still
  satisfied after resizing (no spillover of unfinished work), and
* an *upper bound* — a VM cannot be allocated more than the box offers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["ResizingProblem", "tickets_for_allocation", "per_vm_tickets"]

#: Strict-inequality slack: demand counts as a violation only when it
#: exceeds the threshold by more than this, making "capacity equal to the
#: (scaled) demand value" safely ticket-free as Lemma 4.1 assumes.
TICKET_TOLERANCE = 1e-9


@dataclass
class ResizingProblem:
    """One box, one resource: demands, budget and bounds.

    Attributes
    ----------
    demands:
        ``(M, T)`` demand matrix over the resizing window, absolute units
        (GHz or GB).
    capacity:
        The box's total allocatable capacity ``C``.
    alpha:
        Ticket threshold as a fraction (0.6 for the 60% policy).
    lower_bounds / upper_bounds:
        Optional per-VM capacity bounds; default 0 and ``capacity``.
    """

    demands: np.ndarray
    capacity: float
    alpha: float = 0.6
    lower_bounds: Optional[np.ndarray] = None
    upper_bounds: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.demands = np.asarray(self.demands, dtype=float)
        if self.demands.ndim != 2:
            raise ValueError(f"demands must be (M, T), got shape {self.demands.shape}")
        if self.demands.shape[0] < 1 or self.demands.shape[1] < 1:
            raise ValueError("demands must be non-empty")
        if np.any(self.demands < -TICKET_TOLERANCE):
            raise ValueError("demands must be non-negative")
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        m = self.n_vms
        if self.lower_bounds is None:
            self.lower_bounds = np.zeros(m)
        else:
            self.lower_bounds = np.asarray(self.lower_bounds, dtype=float)
        if self.upper_bounds is None:
            self.upper_bounds = np.full(m, self.capacity)
        else:
            self.upper_bounds = np.asarray(self.upper_bounds, dtype=float)
        for name, arr in (("lower_bounds", self.lower_bounds), ("upper_bounds", self.upper_bounds)):
            if arr.shape != (m,):
                raise ValueError(f"{name} must have shape ({m},), got {arr.shape}")
        if np.any(self.lower_bounds < 0):
            raise ValueError("lower bounds must be non-negative")
        if np.any(self.upper_bounds < self.lower_bounds - TICKET_TOLERANCE):
            raise ValueError("upper bounds must dominate lower bounds")

    @property
    def n_vms(self) -> int:
        return self.demands.shape[0]

    @property
    def n_windows(self) -> int:
        return self.demands.shape[1]

    @property
    def bounds_feasible(self) -> bool:
        """Can the lower bounds be satisfied within the budget at all?"""
        return float(self.lower_bounds.sum()) <= self.capacity + TICKET_TOLERANCE

    def clamp(self, allocation: Sequence[float]) -> np.ndarray:
        """Project an allocation into the per-VM bound box (not the budget)."""
        alloc = np.asarray(allocation, dtype=float)
        return np.clip(alloc, self.lower_bounds, self.upper_bounds)

    def is_feasible(self, allocation: Sequence[float], atol: float = 1e-6) -> bool:
        """Check bounds and budget feasibility of an allocation."""
        alloc = np.asarray(allocation, dtype=float)
        if alloc.shape != (self.n_vms,):
            return False
        if np.any(alloc < self.lower_bounds - atol):
            return False
        if np.any(alloc > self.upper_bounds + atol):
            return False
        return float(alloc.sum()) <= self.capacity + atol


def per_vm_tickets(
    problem: ResizingProblem, allocation: Sequence[float]
) -> np.ndarray:
    """Ticket count per VM for a given allocation.

    VMs with a non-positive allocation get a ticket for every window with
    non-zero demand (they are starved).
    """
    alloc = np.asarray(allocation, dtype=float)
    if alloc.shape != (problem.n_vms,):
        raise ValueError(
            f"allocation must have shape ({problem.n_vms},), got {alloc.shape}"
        )
    thresholds = problem.alpha * alloc
    counts = np.empty(problem.n_vms, dtype=int)
    for i in range(problem.n_vms):
        if alloc[i] <= 0:
            counts[i] = int((problem.demands[i] > TICKET_TOLERANCE).sum())
        else:
            counts[i] = int(
                (problem.demands[i] > thresholds[i] + TICKET_TOLERANCE).sum()
            )
    return counts


def tickets_for_allocation(
    problem: ResizingProblem, allocation: Sequence[float]
) -> int:
    """Total tickets on the box for an allocation (objective of problem R)."""
    return int(per_vm_tickets(problem, allocation).sum())
