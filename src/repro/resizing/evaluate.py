"""Fleet-level resizing evaluation: ticket reduction per algorithm.

This module produces the numbers behind Fig. 8 (resizing on *actual*
demands — the oracle study isolating the algorithms) and, together with the
core pipeline, Fig. 10 (resizing on *predicted* demands — the full ATM).

For each box and resource:

1. ``tickets_before``: tickets the evaluation-day demands generate under
   the box's *current* allocations.
2. Size the VMs with the chosen algorithm using the *sizing demands*
   (actual demands for the oracle study, predictions for full ATM).
3. ``tickets_after``: tickets the same evaluation-day demands generate
   under the new allocation.
4. ``reduction = 100 * (before - after) / before``, undefined (skipped)
   for boxes with no tickets to begin with.  Negative values mean the
   policy made things worse — max-min fairness does exactly that on a
   subset of boxes in Fig. 10.

Lower bounds default to the peak of the *sizing* demands (the paper's
"peak usage before resizing is satisfied"); upper bounds to the box
capacity.  An infeasible solve falls back to the current allocation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.core import faults
from repro.core.degrade import RUNG_FAILED, DegradationEvent, ErrorReport
from repro.core.streaming import TicketHistogram, fleet_results
from repro.resizing.baselines import max_min_fairness_allocation, stingy_allocation
from repro.resizing.greedy import solve_greedy
from repro.resizing.mckp import build_mckp
from repro.resizing.problem import ResizingProblem, tickets_for_allocation
from repro.tickets.policy import TicketPolicy
from repro.timeseries.metrics import finite_mean, finite_std
from repro.trace.model import BoxTrace, FleetTrace, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.shards import ShardedFleet

__all__ = [
    "ResizingAlgorithm",
    "BoxReduction",
    "FleetReduction",
    "reduction_percent",
    "resize_allocation",
    "evaluate_box_resizing",
    "evaluate_fleet_resizing",
]


class ResizingAlgorithm(enum.Enum):
    """Sizing policies compared in Figs. 8 and 10."""

    ATM = "atm"                      # greedy MCKP with ε discretization
    ATM_NO_DISCRETIZATION = "atm_no_disc"
    MAX_MIN_FAIRNESS = "maxmin"
    STINGY = "stingy"


def reduction_percent(before: int, after: int) -> float:
    """Ticket reduction in percent; ``nan`` when there was nothing to reduce."""
    if before < 0 or after < 0:
        raise ValueError("ticket counts must be non-negative")
    if before == 0:
        return float("nan")
    return 100.0 * (before - after) / before


def redistribute_slack(
    problem: ResizingProblem,
    allocation: np.ndarray,
    current: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Hand unused box capacity back to the VMs.

    The MCKP solution sizes VMs just large enough for the *predicted*
    demands; on a lowly utilized box that leaves capacity idle while
    prediction errors can push actual demand past the snug limits.  Any
    sane controller returns the slack: first restore VMs toward their
    current allocations (never shrink without need), then spread what
    remains as proportional headroom.  Extra capacity can only remove
    tickets, never add them.
    """
    alloc = np.asarray(allocation, dtype=float).copy()
    slack = problem.capacity - float(alloc.sum())
    if slack <= 1e-9:
        return alloc
    if current is not None:
        target = np.maximum(alloc, np.minimum(current, problem.upper_bounds))
        deficit = target - alloc
        total_deficit = float(deficit.sum())
        if total_deficit > 1e-12:
            grant = min(1.0, slack / total_deficit)
            alloc = alloc + deficit * grant
            slack -= total_deficit * grant
    if slack > 1e-9:
        room = problem.upper_bounds - alloc
        total_room = float(room.sum())
        if total_room > 1e-12:
            alloc = alloc + np.minimum(room, slack * room / total_room)
    return alloc


def resize_allocation(
    problem: ResizingProblem,
    algorithm: ResizingAlgorithm,
    epsilon: "np.ndarray | float" = 0.0,
    current: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, bool]:
    """Run one sizing policy on a problem; returns (allocation, feasible).

    ``current`` (the pre-resizing allocations) lets the ATM variants return
    unused slack via :func:`redistribute_slack`.
    """
    if algorithm is ResizingAlgorithm.STINGY:
        alloc = stingy_allocation(problem)
        return alloc, float(alloc.sum()) <= problem.capacity + 1e-9
    if algorithm is ResizingAlgorithm.MAX_MIN_FAIRNESS:
        # The fairness baseline is unaware of ATM's practical bounds
        # (Section IV-A.1 introduces them for the resizing algorithm only).
        # Without a peak-demand floor, progressive filling can leave large
        # VMs below their current coverage — the negative-reduction tail the
        # paper observes in Fig. 10.
        unbounded = ResizingProblem(
            demands=problem.demands,
            capacity=problem.capacity,
            alpha=problem.alpha,
            upper_bounds=problem.upper_bounds,
        )
        alloc = max_min_fairness_allocation(unbounded)
        return alloc, float(alloc.sum()) <= problem.capacity + 1e-9
    eps = epsilon if algorithm is ResizingAlgorithm.ATM else 0.0
    instance = build_mckp(problem, epsilon=eps)
    solution = solve_greedy(instance)
    alloc = solution.allocations
    if solution.feasible:
        alloc = redistribute_slack(problem, alloc, current=current)
    return alloc, solution.feasible


@dataclass(frozen=True)
class BoxReduction:
    """Outcome of resizing one box for one resource."""

    box_id: str
    resource: Resource
    algorithm: ResizingAlgorithm
    tickets_before: int
    tickets_after: int
    feasible: bool

    @property
    def reduction(self) -> float:
        return reduction_percent(self.tickets_before, self.tickets_after)

    @property
    def clipped_reduction(self) -> float:
        """Reduction floored at -100%, matching the paper's Fig. 8/10 axis.

        A policy that more than doubles a box's tickets contributes -100
        rather than an unbounded negative value, so fleet means stay
        comparable with the published bars.
        """
        value = self.reduction
        return max(-100.0, value) if np.isfinite(value) else value


@dataclass
class FleetReduction:
    """Aggregated ticket reductions across a fleet (one Fig. 8/10 bar each)."""

    results: List[BoxReduction] = field(default_factory=list)
    #: Boxes that failed during the fleet sweep (partial-results report).
    report: ErrorReport = field(default_factory=ErrorReport)
    #: Streaming reduction-shape summary, folded as results arrive
    #: (O(bins) state regardless of fleet size).
    histogram: TicketHistogram = field(default_factory=TicketHistogram)

    def add(self, result: BoxReduction) -> None:
        self.results.append(result)
        self.histogram.add(result.clipped_reduction)

    def _reductions(
        self, resource: Resource, algorithm: ResizingAlgorithm
    ) -> np.ndarray:
        values = [
            r.clipped_reduction
            for r in self.results
            if r.resource is resource
            and r.algorithm is algorithm
            and r.tickets_before > 0
        ]
        return np.asarray(values, dtype=float)

    def mean_reduction(self, resource: Resource, algorithm: ResizingAlgorithm) -> float:
        return finite_mean(self._reductions(resource, algorithm))

    def std_reduction(self, resource: Resource, algorithm: ResizingAlgorithm) -> float:
        return finite_std(self._reductions(resource, algorithm))

    def totals(
        self, resource: Resource, algorithm: ResizingAlgorithm
    ) -> Tuple[int, int]:
        """(total tickets before, after) across the fleet."""
        before = sum(
            r.tickets_before
            for r in self.results
            if r.resource is resource and r.algorithm is algorithm
        )
        after = sum(
            r.tickets_after
            for r in self.results
            if r.resource is resource and r.algorithm is algorithm
        )
        return before, after


def _epsilon_vector(epsilon_pct: float, current_alloc: np.ndarray) -> np.ndarray:
    """Per-VM ε in demand units: ε percent of the VM's current capacity.

    The paper's demands are utilization-scaled, so a fixed ε=5 corresponds
    to five *percentage points*; in absolute demand units that is 5% of the
    VM's capacity.
    """
    return epsilon_pct / 100.0 * current_alloc


def evaluate_box_resizing(
    box: BoxTrace,
    resource: Resource,
    policy: TicketPolicy,
    algorithms: Sequence[ResizingAlgorithm],
    eval_demands: np.ndarray,
    sizing_demands: Optional[np.ndarray] = None,
    epsilon_pct: float = 5.0,
    lower_bounds: Optional[np.ndarray] = None,
) -> List[BoxReduction]:
    """Evaluate sizing policies on one box and resource.

    Parameters
    ----------
    box:
        The box (provides current allocations and the capacity budget).
    eval_demands:
        ``(M, T)`` actual demands of the evaluation window — ticket ground
        truth.
    sizing_demands:
        Demands fed to the sizing policies; defaults to ``eval_demands``
        (the Fig. 8 oracle).  Pass predictions for full-ATM evaluation.
    lower_bounds:
        Per-VM capacity floors; default is the peak of the sizing demands.
    """
    sizing = eval_demands if sizing_demands is None else np.asarray(sizing_demands, float)
    current = box.allocations(resource)
    capacity = box.capacity(resource)
    if lower_bounds is None:
        lower_bounds = sizing.max(axis=1)
    lower_bounds = np.minimum(lower_bounds, capacity)  # can't demand above the box

    problem = ResizingProblem(
        demands=sizing,
        capacity=capacity,
        alpha=policy.alpha,
        lower_bounds=lower_bounds,
        upper_bounds=np.full(box.n_vms, capacity),
    )
    truth = ResizingProblem(
        demands=eval_demands,
        capacity=capacity,
        alpha=policy.alpha,
        upper_bounds=np.full(box.n_vms, capacity),
    )
    before = tickets_for_allocation(truth, current)

    epsilon = _epsilon_vector(epsilon_pct, current)
    out: List[BoxReduction] = []
    for algorithm in algorithms:
        allocation, feasible = resize_allocation(
            problem, algorithm, epsilon=epsilon, current=current
        )
        if not feasible:
            obs.inc("resize.infeasible")
            allocation = current  # degrade to the status quo
        after = tickets_for_allocation(truth, allocation)
        out.append(
            BoxReduction(
                box_id=box.box_id,
                resource=resource,
                algorithm=algorithm,
                tickets_before=before,
                tickets_after=after,
                feasible=feasible,
            )
        )
    return out


def _evaluate_box_worker(
    item: Tuple[BoxTrace, Dict[Resource, Optional[np.ndarray]]],
    resources: Sequence[Resource],
    policy: TicketPolicy,
    algorithms: Sequence[ResizingAlgorithm],
    eval_windows: Optional[int],
    epsilon_pct: float,
    degrade: bool,
    resume: bool = False,
) -> Tuple[List[BoxReduction], List[DegradationEvent]]:
    """Per-box unit of work for the fleet sweep (module-level: picklable).

    A failing box yields an empty result plus a ``failed`` degradation
    event instead of aborting the sweep (``degrade=False`` restores the
    fail-fast propagation).

    With a persistent artifact store each completed box's sweep is
    materialized; ``resume=True`` serves stored boxes (counted as
    ``resize.resume.hits``) and computes only the rest.

    The box half of ``item`` may be a
    :class:`repro.store.shards.BoxShardRef`; the shard is memory-mapped
    here in the worker rather than pickled by the parent.
    """
    # Local imports: repro.core.stages itself imports this module.
    from repro.core import stages
    from repro.store import default_store
    from repro.store.shards import resolve_box

    box, sizing_by_resource = item
    box = resolve_box(box)
    store = default_store()
    key = None
    if store.persistent:
        key = stages.resize_eval_key(
            box,
            sizing_by_resource,
            resources,
            policy,
            algorithms,
            eval_windows,
            epsilon_pct,
            degrade,
        )
    if resume and key is not None:
        cached = store.get(key, memory=False)
        if cached is not None:
            obs.inc("resize.resume.hits")
            results, events = cached
            return list(results), list(events)
    out: List[BoxReduction] = []
    try:
        faults.inject_slow(box.box_id)
        faults.inject_fault("box_error", box.box_id)
        with obs.span("resize.box"):
            for resource in resources:
                demands = box.demand_matrix(resource)
                if eval_windows is not None:
                    demands = demands[:, : min(eval_windows, demands.shape[1])]
                out.extend(
                    evaluate_box_resizing(
                        box,
                        resource,
                        policy,
                        algorithms,
                        eval_demands=demands,
                        sizing_demands=sizing_by_resource.get(resource),
                        epsilon_pct=epsilon_pct,
                    )
                )
    except Exception as exc:
        if not degrade:
            raise
        obs.inc("resize.boxes_failed")
        events = [
            DegradationEvent(
                box_id=box.box_id,
                stage="run",
                rung=RUNG_FAILED,
                reason=repr(exc),
            )
        ]
        if key is not None:
            store.put(key, ([], events), memory=False)
        return [], events
    if key is not None:
        store.put(key, (out, []), memory=False)
    return out, []


def evaluate_fleet_resizing(
    fleet: Union[FleetTrace, "ShardedFleet"],
    policy: TicketPolicy,
    algorithms: Sequence[ResizingAlgorithm] = tuple(ResizingAlgorithm),
    eval_windows: Optional[int] = None,
    sizing_demands: Optional[Dict[Tuple[str, Resource], np.ndarray]] = None,
    epsilon_pct: float = 5.0,
    resources: Sequence[Resource] = (Resource.CPU, Resource.RAM),
    jobs: Optional[int] = None,
    degrade: bool = True,
    resume: bool = False,
) -> FleetReduction:
    """Run the resizing comparison across a fleet (the Fig. 8 study).

    ``fleet`` may be an in-RAM :class:`FleetTrace` or a
    :class:`repro.store.shards.ShardedFleet`; for the latter, work items
    carry shard descriptors that workers memory-map locally, and results
    stream into the aggregates as chunks land (``REPRO_STREAM_AGG=0``
    restores the materialized-list path).

    Parameters
    ----------
    eval_windows:
        Restrict to the first ``k`` windows (e.g. one day = 96); ``None``
        evaluates the whole trace.
    sizing_demands:
        Optional per ``(box_id, resource)`` demand matrices to size against
        (the prediction-driven Fig. 10 path); by default sizing sees the
        actual evaluation demands.
    jobs:
        Worker processes for the per-box fan-out (``None`` reads
        ``REPRO_JOBS``, default 1 = serial).  Each worker receives the
        pickled boxes of its chunk plus their sizing matrices; results are
        aggregated in fleet box order for any worker count.
    degrade:
        Collect partial results on per-box failures (default), reporting
        them in ``result.report``; ``False`` restores fail-fast.
    resume:
        Serve boxes whose sweep artifact is already materialized in the
        persistent store (``REPRO_STORE`` / ``--store``); no-op without
        one.
    """
    from repro.core.executor import FleetExecutor

    # Sharded fleets contribute refs (box_id available from the manifest);
    # in-RAM fleets contribute the boxes themselves.
    boxes = fleet.box_refs() if hasattr(fleet, "box_refs") else fleet
    items = []
    for box in boxes:
        sizing_by_resource: Dict[Resource, Optional[np.ndarray]] = {}
        if sizing_demands is not None:
            for resource in resources:
                sizing_by_resource[resource] = sizing_demands.get(
                    (box.box_id, resource)
                )
        items.append((box, sizing_by_resource))

    executor = FleetExecutor(jobs=jobs)
    obs.inc("resize.boxes", len(items))
    summary = FleetReduction()
    with obs.span("resize.fleet"):
        # Shared fold for the streaming and materialized paths; only the
        # iterator differs (see repro.core.streaming).
        for results, events in fleet_results(
            executor,
            _evaluate_box_worker,
            items,
            tuple(resources),
            policy,
            tuple(algorithms),
            eval_windows,
            epsilon_pct,
            degrade,
            resume,
        ):
            summary.report.extend(events)
            for result in results:
                summary.add(result)
    return summary
