"""Greedy MCKP solver driven by marginal ticket reduction values (MTRV).

The paper solves R' in the spirit of Pisinger's "minimal algorithm": start
every VM at its largest candidate capacity (fewest tickets) and, while the
budget is exceeded, shrink the VM whose next step down costs the fewest
tickets per unit of capacity freed:

    MTRV = (P_{i,o} - P_{i,o-1}) / (D'_{i,o-1} - D'_{i,o})        (Eq. 12)

The VM with the lowest MTRV steps to its next (smaller) candidate.  The loop
ends when the chosen capacities fit in the budget, or no VM can shrink
further (infeasible bounds).
"""

from __future__ import annotations

import heapq
from typing import List

from repro.resizing.mckp import MckpInstance, MckpSolution

__all__ = ["solve_greedy", "mtrv"]


def mtrv(instance: MckpInstance, group_index: int, choice: int) -> float:
    """Marginal ticket reduction value of stepping group ``group_index``
    from candidate ``choice`` to ``choice + 1``.

    Smaller is better for shrinking: few extra tickets per unit capacity
    freed.
    """
    group = instance.groups[group_index]
    if choice + 1 >= group.n_choices:
        raise IndexError(f"group {group_index} cannot step below choice {choice}")
    dt = float(group.tickets[choice + 1] - group.tickets[choice])
    dc = float(group.capacities[choice] - group.capacities[choice + 1])
    if dc <= 0:  # pragma: no cover - groups are strictly decreasing
        raise ValueError("candidate capacities must strictly decrease")
    return dt / dc


def solve_greedy(instance: MckpInstance) -> MckpSolution:
    """Solve an MCKP instance with the MTRV greedy.

    Deterministic tie-breaking: lowest MTRV first, then the largest capacity
    release, then the lowest VM index.  Runs in
    ``O(total_candidates * log M)`` using a heap of current step offers.

    When even the smallest candidates exceed the budget the solution is
    returned with ``feasible=False`` and every group at its last candidate —
    the caller decides how to degrade (the fleet evaluator falls back to the
    original allocation in that case).
    """
    n = instance.n_vms
    choices = [0] * n
    total = instance.max_total_capacity()
    iterations = 0

    if total <= instance.capacity + 1e-9:
        alloc = instance.allocation_for(choices)
        return MckpSolution(
            allocations=alloc,
            choices=tuple(choices),
            tickets=instance.tickets_for(choices),
            feasible=True,
            iterations=0,
        )

    # Heap entries: (mtrv, -capacity_release, vm_index, choice_at_push).
    heap: List[tuple] = []
    for g in range(n):
        if instance.groups[g].n_choices > 1:
            release = float(
                instance.groups[g].capacities[0] - instance.groups[g].capacities[1]
            )
            heapq.heappush(heap, (mtrv(instance, g, 0), -release, g, 0))

    while total > instance.capacity + 1e-9 and heap:
        value, neg_release, g, pushed_choice = heapq.heappop(heap)
        if pushed_choice != choices[g]:
            continue  # stale offer from an earlier state of this group
        group = instance.groups[g]
        choices[g] += 1
        total -= group.capacities[pushed_choice] - group.capacities[choices[g]]
        iterations += 1
        if choices[g] + 1 < group.n_choices:
            release = float(
                group.capacities[choices[g]] - group.capacities[choices[g] + 1]
            )
            heapq.heappush(
                heap, (mtrv(instance, g, choices[g]), -release, g, choices[g])
            )

    feasible = total <= instance.capacity + 1e-9
    alloc = instance.allocation_for(choices)
    return MckpSolution(
        allocations=alloc,
        choices=tuple(choices),
        tickets=instance.tickets_for(choices),
        feasible=feasible,
        iterations=iterations,
    )
