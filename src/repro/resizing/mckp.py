"""Lemma 4.1 transform: resizing problem → multi-choice knapsack (MCKP).

Lemma 4.1 shows the optimal *effective* capacity ``alpha * C_i`` of every VM
lies in its set of (unique) demand values, or is zero.  So each VM becomes a
*group* of candidate capacities with precomputed ticket counts, and exactly
one candidate must be picked per group subject to the capacity budget —
a multi-choice knapsack problem.

The ε *discretization factor* rounds demand values up to multiples of ε
before deduplication, which (i) shrinks the candidate sets — fewer integer
variables — and (ii) adds a safety margin, because capacities only ever
round up (the paper: "rounding up demands makes the resizing algorithm more
aggressive in allocating resources").

Paper ambiguity note (see DESIGN.md): the paper's running example treats the
chosen demand value as the effective capacity (tickets fire when demand
exceeds the value itself), while constraint (9) budgets the raw values.  The
default here is the self-consistent reading — candidates are effective
capacities and the *allocated* capacity is ``candidate / alpha``.  Passing
``literal_formulation=True`` reproduces the paper's literal R' instead
(allocated capacity equals the demand value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from repro.resizing.problem import TICKET_TOLERANCE, ResizingProblem

__all__ = ["MckpGroup", "MckpInstance", "MckpSolution", "build_mckp"]


@dataclass(frozen=True)
class MckpGroup:
    """Candidate capacities of one VM, sorted by decreasing capacity.

    ``tickets[v]`` is the ticket count if ``capacities[v]`` is allocated;
    by construction it is non-decreasing along the array.
    """

    vm_index: int
    capacities: np.ndarray
    tickets: np.ndarray

    def __post_init__(self) -> None:
        if self.capacities.ndim != 1 or self.capacities.shape != self.tickets.shape:
            raise ValueError("capacities and tickets must be 1-D and aligned")
        if self.capacities.size == 0:
            raise ValueError(f"group {self.vm_index} has no candidates")
        if np.any(np.diff(self.capacities) >= 0):
            raise ValueError("capacities must be strictly decreasing")
        if np.any(np.diff(self.tickets) < 0):
            raise ValueError("tickets must be non-decreasing as capacity shrinks")

    @property
    def n_choices(self) -> int:
        return self.capacities.size


@dataclass
class MckpInstance:
    """The transformed problem R': groups, one pick each, capacity budget."""

    groups: List[MckpGroup]
    capacity: float

    @property
    def n_vms(self) -> int:
        return len(self.groups)

    @property
    def n_variables(self) -> int:
        """Total number of binary choice variables Y_{i,v}."""
        return sum(g.n_choices for g in self.groups)

    def min_total_capacity(self) -> float:
        return float(sum(g.capacities[-1] for g in self.groups))

    def max_total_capacity(self) -> float:
        return float(sum(g.capacities[0] for g in self.groups))

    @property
    def feasible(self) -> bool:
        return self.min_total_capacity() <= self.capacity + 1e-9

    def allocation_for(self, choices: Sequence[int]) -> np.ndarray:
        """Map per-group choice indices to a capacity allocation vector."""
        if len(choices) != self.n_vms:
            raise ValueError(f"need {self.n_vms} choices, got {len(choices)}")
        return np.array(
            [g.capacities[c] for g, c in zip(self.groups, choices)], dtype=float
        )

    def tickets_for(self, choices: Sequence[int]) -> int:
        """Objective value of a choice vector."""
        return int(sum(g.tickets[c] for g, c in zip(self.groups, choices)))


@dataclass(frozen=True)
class MckpSolution:
    """Result of an MCKP solver run."""

    allocations: np.ndarray
    choices: tuple
    tickets: int
    feasible: bool
    iterations: int = 0

    @property
    def total_capacity(self) -> float:
        return float(self.allocations.sum())


def _round_up(values: np.ndarray, epsilon: float) -> np.ndarray:
    if epsilon <= 0:
        return values
    return np.ceil(values / epsilon - 1e-12) * epsilon


def build_mckp(
    problem: ResizingProblem,
    epsilon: Union[float, Sequence[float]] = 0.0,
    literal_formulation: bool = False,
) -> MckpInstance:
    """Build the MCKP instance from a resizing problem.

    Parameters
    ----------
    problem:
        The resizing problem R.
    epsilon:
        Discretization factor in demand units — scalar, or one value per VM
        (the fleet evaluator passes per-VM values equal to ε% of current
        capacity so the granularity matches each VM's scale).  Zero disables
        discretization ("ATM w/o discretizing" in Fig. 8).
    literal_formulation:
        Use the paper's literal R' (allocated capacity = demand value)
        instead of the self-consistent effective-capacity reading.
    """
    m = problem.n_vms
    eps = np.asarray(epsilon, dtype=float)
    if eps.ndim == 0:
        eps = np.full(m, float(eps))
    if eps.shape != (m,):
        raise ValueError(f"epsilon must be scalar or shape ({m},), got {eps.shape}")
    if np.any(eps < 0):
        raise ValueError("epsilon must be non-negative")

    groups: List[MckpGroup] = []
    for i in range(m):
        demands = problem.demands[i]
        rounded = _round_up(demands[demands > TICKET_TOLERANCE], eps[i])
        # Candidate effective capacities: unique demand values plus 0.
        effective = np.unique(rounded)[::-1]  # descending
        if literal_formulation:
            caps = effective.copy()
        else:
            caps = effective / problem.alpha
        # Apply bounds, keep 0 as the "give it nothing" candidate (clamped to
        # the lower bound, which is the real floor).
        caps = np.append(caps, 0.0)
        caps = np.clip(caps, problem.lower_bounds[i], problem.upper_bounds[i])
        caps = np.unique(caps)[::-1]
        # Ticket threshold per candidate: in the literal paper formulation
        # the chosen demand value acts as the effective capacity itself (the
        # running example counts D > D'_v), while the self-consistent
        # reading allocates candidate/alpha so alpha * capacity applies.
        threshold_factor = 1.0 if literal_formulation else problem.alpha
        # count(demands > t) == n - searchsorted(sorted, t, 'right'): one
        # O(W log W) sort per VM instead of an O(candidates x W) scan.
        thresholds = np.where(
            caps > 0, threshold_factor * caps + TICKET_TOLERANCE, TICKET_TOLERANCE
        )
        sorted_demands = np.sort(demands)
        tickets = (
            demands.size - np.searchsorted(sorted_demands, thresholds, side="right")
        ).astype(int)
        # Candidates with equal ticket counts are kept: stepping between them
        # is a zero-MTRV move the greedy takes first when the budget binds,
        # and retaining the larger capacities preserves the safety margin
        # when it does not.
        groups.append(MckpGroup(vm_index=i, capacities=caps, tickets=tickets))
    return MckpInstance(groups=groups, capacity=problem.capacity)
