"""Exact MCKP solvers for validating the greedy's optimality gap.

The paper mentions CPLEX as the standard MILP route; these in-repo solvers
play that role at validation scale:

* :func:`solve_bruteforce` — exhaustive enumeration over the product of
  group choices, exact for tiny instances (the lemma/unit-test scale).
* :func:`solve_dp` — dynamic programming over a discretized capacity grid;
  exact up to the grid resolution and comfortably handles box-sized
  instances.  Capacity costs round *up* onto the grid, so the returned
  solution never violates the true budget (it may be slightly
  conservative).
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from repro.resizing.mckp import MckpInstance, MckpSolution

__all__ = ["solve_bruteforce", "solve_dp"]

_MAX_BRUTEFORCE_COMBOS = 2_000_000


def solve_bruteforce(instance: MckpInstance) -> MckpSolution:
    """Exhaustively enumerate choice vectors; exact but exponential.

    Raises ``ValueError`` when the instance has more than ~2M combinations.
    """
    combos = 1
    for group in instance.groups:
        combos *= group.n_choices
        if combos > _MAX_BRUTEFORCE_COMBOS:
            raise ValueError(
                f"instance too large for brute force ({combos}+ combinations)"
            )
    best_choices: Optional[tuple] = None
    best_key = None
    for choices in itertools.product(*(range(g.n_choices) for g in instance.groups)):
        capacity = sum(
            g.capacities[c] for g, c in zip(instance.groups, choices)
        )
        if capacity > instance.capacity + 1e-9:
            continue
        tickets = instance.tickets_for(choices)
        key = (tickets, capacity)
        if best_key is None or key < best_key:
            best_key = key
            best_choices = choices
    if best_choices is None:
        # Nothing fits: report the all-smallest configuration as infeasible.
        fallback = tuple(g.n_choices - 1 for g in instance.groups)
        return MckpSolution(
            allocations=instance.allocation_for(fallback),
            choices=fallback,
            tickets=instance.tickets_for(fallback),
            feasible=False,
        )
    return MckpSolution(
        allocations=instance.allocation_for(best_choices),
        choices=best_choices,
        tickets=best_key[0],
        feasible=True,
    )


def solve_dp(instance: MckpInstance, grid_points: int = 2048) -> MckpSolution:
    """Dynamic program over a discretized capacity axis.

    Parameters
    ----------
    instance:
        The MCKP instance.
    grid_points:
        Number of capacity buckets; resolution is ``capacity / grid_points``.
        Group capacities are rounded *up* to buckets, so any solution found
        is feasible for the true budget.
    """
    if grid_points < 1:
        raise ValueError("grid_points must be positive")
    n = instance.n_vms
    unit = instance.capacity / grid_points
    # weights[g][v]: bucket cost of choice v in group g (rounded up).
    weights = [
        np.minimum(
            np.ceil(group.capacities / unit - 1e-12).astype(int), grid_points + 1
        )
        for group in instance.groups
    ]

    infinity = np.iinfo(np.int64).max // 4
    # dp[b] = min tickets achievable with budget b buckets, after processing
    # some prefix of groups; parent pointers rebuild the choices.
    dp = np.full(grid_points + 1, infinity, dtype=np.int64)
    dp[:] = 0  # zero groups -> zero tickets at any budget
    parents = []
    for g in range(n):
        group = instance.groups[g]
        new_dp = np.full(grid_points + 1, infinity, dtype=np.int64)
        choice_at = np.full(grid_points + 1, -1, dtype=np.int32)
        for v in range(group.n_choices):
            w = int(weights[g][v])
            if w > grid_points:
                continue
            t = int(group.tickets[v])
            # shifted[b] = dp[b - w] + t for b >= w
            candidate = dp[: grid_points + 1 - w] + t
            target = new_dp[w:]
            better = candidate < target
            if better.any():
                target[better] = candidate[better]
                choice_at[w:][better] = v
        parents.append(choice_at)
        dp = new_dp

    feasible_buckets = np.flatnonzero(dp < infinity)
    if feasible_buckets.size == 0:
        fallback = tuple(g.n_choices - 1 for g in instance.groups)
        return MckpSolution(
            allocations=instance.allocation_for(fallback),
            choices=fallback,
            tickets=instance.tickets_for(fallback),
            feasible=False,
        )
    best_bucket = int(feasible_buckets[np.argmin(dp[feasible_buckets])])
    # Prefer the smallest bucket among ties (least capacity used).
    best_value = int(dp[best_bucket])
    for b in feasible_buckets:
        if dp[b] == best_value:
            best_bucket = int(b)
            break

    # Walk parents backwards to recover choices.
    choices = [0] * n
    bucket = best_bucket
    for g in range(n - 1, -1, -1):
        v = int(parents[g][bucket])
        if v < 0:  # pragma: no cover - guarded by feasibility above
            raise RuntimeError("DP parent chain broken")
        choices[g] = v
        bucket -= int(weights[g][v])
    return MckpSolution(
        allocations=instance.allocation_for(tuple(choices)),
        choices=tuple(choices),
        tickets=instance.tickets_for(tuple(choices)),
        feasible=True,
    )
