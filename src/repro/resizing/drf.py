"""Dominant Resource Fairness allocator (Ghodsi et al., NSDI'11 — paper ref [17]).

The paper's related work singles out DRF as the canonical multi-resource
fairness policy.  This module adds it as a further baseline: instead of
sizing CPU and RAM independently (max-min per resource), DRF equalizes each
VM's *dominant share* — the maximum, over resources, of its allocated
fraction of the box.

Like the other fairness baselines, DRF aims at fairness, not tickets; its
ticket reduction is a side effect, which is exactly the contrast the paper
draws with ATM's objective-driven sizing.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.resizing.problem import ResizingProblem
from repro.trace.model import Resource

__all__ = ["drf_allocation"]

_STEP_FRACTION = 5e-4  # progressive-filling granularity (fraction of box)


def drf_allocation(
    problems: Dict[Resource, ResizingProblem]
) -> Dict[Resource, np.ndarray]:
    """Allocate CPU and RAM jointly with dominant-resource fairness.

    Parameters
    ----------
    problems:
        One :class:`ResizingProblem` per resource for the *same* VMs (equal
        ``n_vms``, aligned indices).  Each VM's target per resource is the
        ticket-free level ``peak / alpha``.

    Returns
    -------
    dict
        Per-resource allocation vectors.  Progressive filling: repeatedly
        grant a small allocation step to the VM with the lowest dominant
        share until every target is met or both budgets are exhausted.
    """
    if not problems:
        raise ValueError("need at least one resource problem")
    resources = sorted(problems, key=lambda r: r.value)
    n_vms = {problems[r].n_vms for r in resources}
    if len(n_vms) != 1:
        raise ValueError("all resource problems must cover the same VMs")
    m = n_vms.pop()

    capacity = {r: problems[r].capacity for r in resources}
    targets = {
        r: np.minimum(
            problems[r].demands.max(axis=1) / problems[r].alpha,
            problems[r].upper_bounds,
        )
        for r in resources
    }
    alloc = {r: np.zeros(m) for r in resources}
    remaining = {r: capacity[r] for r in resources}
    # Demand profile per VM: how much of each resource one "step" uses,
    # proportional to its remaining target mix (the DRF demand vector).
    step = {r: _STEP_FRACTION * capacity[r] for r in resources}

    def dominant_share(i: int) -> float:
        return max(alloc[r][i] / capacity[r] for r in resources)

    def unmet(i: int) -> bool:
        return any(alloc[r][i] < targets[r][i] - 1e-12 for r in resources)

    active = [i for i in range(m) if unmet(i)]
    # Upper bound on iterations: each grant moves one VM one step on some
    # resource; total steps are bounded by sum of targets / step sizes.
    max_iterations = int(4.0 / _STEP_FRACTION) * max(1, len(resources))
    iterations = 0
    while active and iterations < max_iterations:
        iterations += 1
        i = min(active, key=dominant_share)
        granted = False
        for r in resources:
            want = targets[r][i] - alloc[r][i]
            if want <= 1e-12:
                continue
            grant = min(step[r], want, remaining[r])
            if grant > 1e-12:
                alloc[r][i] += grant
                remaining[r] -= grant
                granted = True
        if not granted or not unmet(i):
            active = [j for j in active if j != i and unmet(j)]
            if granted and unmet(i):
                active.append(i)
        if all(remaining[r] <= 1e-12 for r in resources):
            break
        # Drop VMs whose every outstanding resource has an empty budget.
        active = [
            j
            for j in active
            if any(
                alloc[r][j] < targets[r][j] - 1e-12 and remaining[r] > 1e-12
                for r in resources
            )
        ]
    return alloc
