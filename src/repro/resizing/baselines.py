"""Baseline allocation policies: "stingy" and max-min fairness (Section IV-B).

* **Stingy** allocates each VM exactly its lower bound — the peak demand of
  the window, regardless of the ticket threshold ("often used in practice").
  Every window at the peak then sits at 100% utilization and tickets freely.
* **Max-min fairness** progressively fills capacity toward each VM's
  threshold-aware target ``max(D_i) / alpha`` starting from the smallest
  demands, "favoring small VMs while dissatisfying big VMs" — which is
  exactly the failure mode the paper observes in Fig. 10.
"""

from __future__ import annotations

import numpy as np

from repro.resizing.problem import ResizingProblem

__all__ = ["stingy_allocation", "max_min_fairness_allocation"]


def stingy_allocation(problem: ResizingProblem) -> np.ndarray:
    """Allocate each VM its peak demand (threshold-unaware), within bounds."""
    peaks = problem.demands.max(axis=1)
    return problem.clamp(peaks)


def max_min_fairness_allocation(problem: ResizingProblem) -> np.ndarray:
    """Progressive-filling max-min fairness toward ticket-free targets.

    Each VM's target is ``max(D_i) / alpha`` — the capacity at which its
    whole window stays below the ticket threshold.  Capacity is poured
    equally into all unsatisfied VMs; whenever a VM reaches its target it
    drops out (small VMs finish first).  Lower bounds are funded up front;
    upper bounds cap the pour.
    """
    m = problem.n_vms
    targets = problem.demands.max(axis=1) / problem.alpha
    targets = np.minimum(targets, problem.upper_bounds)
    targets = np.maximum(targets, problem.lower_bounds)

    alloc = problem.lower_bounds.copy()
    remaining = problem.capacity - float(alloc.sum())
    if remaining <= 0:
        # Lower bounds alone exhaust (or exceed) the box; nothing to pour.
        return alloc

    active = [i for i in range(m) if targets[i] > alloc[i] + 1e-12]
    while active and remaining > 1e-12:
        share = remaining / len(active)
        needs = {i: targets[i] - alloc[i] for i in active}
        finished = [i for i in active if needs[i] <= share + 1e-12]
        if finished:
            # Fund the nearly satisfied VMs fully; they leave the pour.
            for i in finished:
                remaining -= needs[i]
                alloc[i] = targets[i]
            active = [i for i in active if i not in set(finished)]
        else:
            for i in active:
                alloc[i] += share
            remaining = 0.0

    # "... until all capacity is exhausted": surplus beyond every target is
    # poured equally into all VMs that still have room under their upper
    # bounds.
    while remaining > 1e-9:
        open_vms = [i for i in range(m) if alloc[i] < problem.upper_bounds[i] - 1e-12]
        if not open_vms:
            break
        share = remaining / len(open_vms)
        poured = 0.0
        for i in open_vms:
            grant = min(share, problem.upper_bounds[i] - alloc[i])
            alloc[i] += grant
            poured += grant
        remaining -= poured
        if poured <= 1e-12:
            break
    return alloc
