"""Capacity actuation: the cgroups-style enforcement layer (Section IV-C).

The paper enforces resizing decisions through Linux cgroups exposed by a
small per-hypervisor web daemon: limits change on-the-fly (no guest
restart) and CPU limits are continuous rather than whole-core steps.

This module defines the :class:`Actuator` protocol that layer exposes and a
:class:`SimulatedCgroupsActuator` with the same semantics for the simulated
testbed: apply per-VM limits between ticketing windows, keep an audit log,
reject impossible limits.  A production deployment would implement the same
protocol against ``/sys/fs/cgroup``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

from repro.trace.model import Resource

__all__ = ["Actuator", "LimitChange", "SimulatedCgroupsActuator"]


@dataclass(frozen=True)
class LimitChange:
    """One applied limit change, for auditability."""

    window: int
    vm_id: str
    resource: Resource
    old_limit: float
    new_limit: float


class Actuator(Protocol):
    """What ATM needs from an enforcement backend."""

    def current_limit(self, vm_id: str, resource: Resource) -> float:
        """Return the currently enforced limit for a VM resource."""
        ...  # pragma: no cover - protocol

    def apply_limits(
        self, window: int, limits: Dict[Tuple[str, Resource], float]
    ) -> List[LimitChange]:
        """Enforce a batch of limits atomically at a window boundary."""
        ...  # pragma: no cover - protocol


class SimulatedCgroupsActuator:
    """In-memory actuator with cgroups semantics.

    * Limits are continuous and positive.
    * Changes apply instantly (no VM restart), only at window boundaries.
    * The per-host physical capacity is respected: the sum of enforced
      limits per resource may not exceed it.
    """

    def __init__(self, host_capacity: Dict[Resource, float]) -> None:
        for resource, capacity in host_capacity.items():
            if capacity <= 0:
                raise ValueError(f"{resource} capacity must be positive")
        self._host_capacity = dict(host_capacity)
        self._limits: Dict[Tuple[str, Resource], float] = {}
        self._log: List[LimitChange] = []

    @property
    def change_log(self) -> List[LimitChange]:
        return list(self._log)

    def register_vm(self, vm_id: str, limits: Dict[Resource, float]) -> None:
        """Register a VM with its initial limits."""
        for resource, limit in limits.items():
            if limit <= 0:
                raise ValueError(f"initial limit for {vm_id}/{resource} must be positive")
            self._limits[(vm_id, resource)] = limit
        self._check_host_budget()

    def current_limit(self, vm_id: str, resource: Resource) -> float:
        key = (vm_id, resource)
        if key not in self._limits:
            raise KeyError(f"VM {vm_id!r} has no {resource.value} limit registered")
        return self._limits[key]

    def apply_limits(
        self, window: int, limits: Dict[Tuple[str, Resource], float]
    ) -> List[LimitChange]:
        """Apply a batch of limit changes; all-or-nothing validation."""
        for (vm_id, resource), limit in limits.items():
            if (vm_id, resource) not in self._limits:
                raise KeyError(f"VM {vm_id!r} has no {resource.value} limit registered")
            if limit <= 0:
                raise ValueError(
                    f"limit for {vm_id}/{resource.value} must be positive, got {limit}"
                )
        staged = dict(self._limits)
        staged.update(limits)
        self._check_host_budget(staged)

        changes: List[LimitChange] = []
        for (vm_id, resource), new_limit in sorted(
            limits.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
        ):
            old_limit = self._limits[(vm_id, resource)]
            if abs(old_limit - new_limit) < 1e-12:
                continue
            self._limits[(vm_id, resource)] = new_limit
            change = LimitChange(
                window=window,
                vm_id=vm_id,
                resource=resource,
                old_limit=old_limit,
                new_limit=new_limit,
            )
            changes.append(change)
            self._log.append(change)
        return changes

    def _check_host_budget(
        self, limits: Optional[Dict[Tuple[str, Resource], float]] = None
    ) -> None:
        limits = self._limits if limits is None else limits
        for resource, capacity in self._host_capacity.items():
            total = sum(
                limit for (vm, res), limit in limits.items() if res is resource
            )
            if total > capacity + 1e-9:
                raise ValueError(
                    f"total {resource.value} limits {total:.3f} exceed host "
                    f"capacity {capacity:.3f}"
                )
