"""Ticketing policies: thresholds and window semantics.

A :class:`TicketPolicy` captures how the monitoring system of Section II
decides to issue a usage ticket: at the end of every ticketing window the
average utilization of each VM resource is compared against a threshold
(60%, 70% or 80% in the paper; 60% is the evaluation default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["TicketPolicy", "DEFAULT_THRESHOLDS", "DEFAULT_POLICY"]

#: The three threshold levels studied in Section II-A (percent).
DEFAULT_THRESHOLDS: Tuple[float, float, float] = (60.0, 70.0, 80.0)


@dataclass(frozen=True)
class TicketPolicy:
    """Threshold policy for usage tickets.

    Attributes
    ----------
    threshold_pct:
        Utilization threshold in percent of allocated capacity.  A ticket is
        issued for a window when usage strictly exceeds this value.
    window_minutes:
        Length of the ticketing window (15 minutes in the paper).
    """

    threshold_pct: float = 60.0
    window_minutes: int = 15

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold_pct < 100.0:
            raise ValueError(
                f"threshold_pct must be in (0, 100), got {self.threshold_pct}"
            )
        if self.window_minutes <= 0:
            raise ValueError("window_minutes must be positive")

    @property
    def alpha(self) -> float:
        """The threshold as a fraction (the paper's alpha, e.g. 0.6)."""
        return self.threshold_pct / 100.0

    def violates_usage(self, usage_pct: float) -> bool:
        """Does a usage percentage trip the policy?"""
        return usage_pct > self.threshold_pct

    def violates_demand(self, demand: float, capacity: float) -> bool:
        """Does an absolute demand against an allocated capacity trip the policy?

        Mirrors the paper's constraint (6): a ticket fires when
        ``demand > alpha * capacity``.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        return demand > self.alpha * capacity

    def with_threshold(self, threshold_pct: float) -> "TicketPolicy":
        """Return a copy of the policy at a different threshold."""
        return TicketPolicy(
            threshold_pct=threshold_pct, window_minutes=self.window_minutes
        )


#: Evaluation default (Section V): tickets at 60% utilization, 15-min windows.
DEFAULT_POLICY = TicketPolicy()
