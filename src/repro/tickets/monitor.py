"""Ticket extraction: turn usage/demand series into ticket events and counts.

The monitor implements the semantics of the paper's indicator variable
``I_{i,t}`` (Eq. 6): VM ``i`` receives a ticket in window ``t`` when its
demand exceeds ``alpha * C_i`` — equivalently, when its utilization exceeds
the threshold percentage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.tickets.policy import TicketPolicy
from repro.trace.model import BoxTrace, Resource

__all__ = [
    "TicketRecord",
    "ticket_matrix",
    "count_tickets",
    "count_tickets_for_demand",
    "tickets_for_box",
    "per_vm_ticket_counts",
]


@dataclass(frozen=True)
class TicketRecord:
    """One issued usage ticket."""

    box_id: str
    vm_id: str
    resource: Resource
    window: int
    usage_pct: float


def ticket_matrix(
    usage: np.ndarray, policy: TicketPolicy
) -> np.ndarray:
    """Return the boolean indicator matrix ``I`` for a usage matrix.

    ``usage`` is ``(M, T)`` in percent; entry ``[i, t]`` is true when VM
    ``i`` gets a ticket in window ``t``.
    """
    arr = np.asarray(usage, dtype=float)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ValueError(f"usage must be 1-D or 2-D, got shape {arr.shape}")
    return arr > policy.threshold_pct


def count_tickets(usage: np.ndarray, policy: TicketPolicy) -> int:
    """Return the total number of tickets in a usage matrix."""
    return int(ticket_matrix(usage, policy).sum())


def count_tickets_for_demand(
    demand: Sequence[float], capacity: float, policy: TicketPolicy
) -> int:
    """Count tickets of one demand series under an allocated capacity.

    Implements ``sum_t [ D_t > alpha * C ]`` — the objective term of the
    resizing problem R.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    d = np.asarray(demand, dtype=float)
    return int((d > policy.alpha * capacity).sum())


def per_vm_ticket_counts(
    box: BoxTrace, resource: Resource, policy: TicketPolicy
) -> np.ndarray:
    """Return the per-VM ticket counts of one resource on a box."""
    return ticket_matrix(box.usage_matrix(resource), policy).sum(axis=1)


def tickets_for_box(
    box: BoxTrace,
    policy: TicketPolicy,
    resources: Optional[Sequence[Resource]] = None,
) -> List[TicketRecord]:
    """Materialize every ticket issued on a box as :class:`TicketRecord`.

    Useful for event-level inspection and for the examples; aggregate
    analyses should prefer the count helpers, which avoid building objects.
    """
    records: List[TicketRecord] = []
    for resource in resources or (Resource.CPU, Resource.RAM):
        usage = box.usage_matrix(resource)
        # Derive hits from the one indicator implementation (Eq. 6) rather
        # than re-stating the comparison inline, so threshold semantics
        # live in a single place.
        hits = np.argwhere(ticket_matrix(usage, policy))
        for vm_idx, window in hits:
            records.append(
                TicketRecord(
                    box_id=box.box_id,
                    vm_id=box.vms[vm_idx].vm_id,
                    resource=resource,
                    window=int(window),
                    usage_pct=float(usage[vm_idx, window]),
                )
            )
    records.sort(key=lambda r: (r.window, r.vm_id, r.resource.value))
    return records
