"""Section II characterization analyses (Figs. 2 and 3).

Three questions from the paper:

1. How many boxes have usage tickets, per resource and threshold (Fig. 2a)?
2. How are tickets distributed per box — mean and standard deviation
   (Fig. 2b)?
3. How concentrated are tickets — how many "culprit" VMs account for the
   majority (80%) of a box's tickets (Fig. 2c)?

Plus the spatial-dependency study: the CDFs across boxes of the per-box
median intra-CPU / intra-RAM / inter-all / inter-pair correlations (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tickets.monitor import per_vm_ticket_counts
from repro.tickets.policy import DEFAULT_THRESHOLDS, TicketPolicy
from repro.timeseries.correlation import decompose_box_correlations
from repro.timeseries.ecdf import Ecdf
from repro.trace.model import BoxTrace, FleetTrace, Resource

__all__ = [
    "BoxTicketStats",
    "FleetTicketSummary",
    "CorrelationCdfs",
    "culprit_vm_count",
    "box_ticket_stats",
    "fleet_ticket_summary",
    "correlation_cdfs",
]

#: The paper's ad-hoc "majority of tickets" definition for culprit VMs.
MAJORITY_SHARE = 0.80


def _scope(box: BoxTrace, first_windows: Optional[int]) -> BoxTrace:
    """Restrict a box to its first windows; whole box when not restricting."""
    if first_windows is None or first_windows >= box.n_windows:
        return box
    return box.split_windows(first_windows)[0]


def culprit_vm_count(per_vm_counts: Sequence[int], share: float = MAJORITY_SHARE) -> int:
    """Return the minimum number of VMs covering ``share`` of a box's tickets.

    Zero when the box has no tickets.  VMs are taken greedily from the most
    ticketed down, which is optimal for this coverage question.
    """
    counts = np.sort(np.asarray(per_vm_counts, dtype=float))[::-1]
    total = counts.sum()
    if total <= 0:
        return 0
    needed = share * total
    covered = np.cumsum(counts)
    return int(np.searchsorted(covered, needed - 1e-9) + 1)


@dataclass(frozen=True)
class BoxTicketStats:
    """Ticket statistics of one box for one resource and one policy."""

    box_id: str
    resource: Resource
    threshold_pct: float
    total_tickets: int
    per_vm: Tuple[int, ...]
    culprits: int

    @property
    def has_tickets(self) -> bool:
        return self.total_tickets > 0


def box_ticket_stats(
    box: BoxTrace,
    resource: Resource,
    policy: TicketPolicy,
    first_windows: Optional[int] = None,
) -> BoxTicketStats:
    """Compute :class:`BoxTicketStats` for one box.

    ``first_windows`` restricts the analysis to the first ``k`` windows —
    the paper's Fig. 2 uses a single day of the 7-day trace.  Values of
    ``first_windows`` at or beyond the trace length select the whole trace.
    """
    scoped = _scope(box, first_windows)
    counts = per_vm_ticket_counts(scoped, resource, policy)
    return BoxTicketStats(
        box_id=box.box_id,
        resource=resource,
        threshold_pct=policy.threshold_pct,
        total_tickets=int(counts.sum()),
        per_vm=tuple(int(c) for c in counts),
        culprits=culprit_vm_count(counts),
    )


@dataclass
class FleetTicketSummary:
    """Fleet-level reproduction of Fig. 2 for a set of thresholds.

    For every (resource, threshold) pair:

    * ``pct_boxes_with_tickets`` — Fig. 2a bars,
    * ``mean_tickets_per_box`` / ``std_tickets_per_box`` — Fig. 2b bars
      (mean over *all* boxes, matching the paper's per-box averages),
    * ``mean_culprits`` / ``std_culprits`` — Fig. 2c bars, computed over the
      boxes that have at least one ticket (a culprit count is undefined
      otherwise).
    """

    thresholds: Tuple[float, ...]
    pct_boxes_with_tickets: Dict[Tuple[Resource, float], float] = field(
        default_factory=dict
    )
    mean_tickets_per_box: Dict[Tuple[Resource, float], float] = field(
        default_factory=dict
    )
    std_tickets_per_box: Dict[Tuple[Resource, float], float] = field(
        default_factory=dict
    )
    mean_culprits: Dict[Tuple[Resource, float], float] = field(default_factory=dict)
    std_culprits: Dict[Tuple[Resource, float], float] = field(default_factory=dict)

    def row(self, resource: Resource, threshold: float) -> Dict[str, float]:
        key = (resource, threshold)
        return {
            "pct_boxes": self.pct_boxes_with_tickets[key],
            "mean_tickets": self.mean_tickets_per_box[key],
            "std_tickets": self.std_tickets_per_box[key],
            "mean_culprits": self.mean_culprits[key],
            "std_culprits": self.std_culprits[key],
        }


def fleet_ticket_summary(
    fleet: FleetTrace,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    first_windows: Optional[int] = None,
    window_minutes: int = 15,
) -> FleetTicketSummary:
    """Compute the Fig. 2 summary across a fleet."""
    summary = FleetTicketSummary(thresholds=tuple(thresholds))
    for resource in (Resource.CPU, Resource.RAM):
        for threshold in thresholds:
            policy = TicketPolicy(threshold_pct=threshold, window_minutes=window_minutes)
            stats = [
                box_ticket_stats(box, resource, policy, first_windows=first_windows)
                for box in fleet
            ]
            totals = np.array([s.total_tickets for s in stats], dtype=float)
            culprits = np.array([s.culprits for s in stats if s.has_tickets], dtype=float)
            key = (resource, threshold)
            summary.pct_boxes_with_tickets[key] = float(100.0 * (totals > 0).mean())
            summary.mean_tickets_per_box[key] = float(totals.mean())
            summary.std_tickets_per_box[key] = float(totals.std())
            summary.mean_culprits[key] = (
                float(culprits.mean()) if culprits.size else 0.0
            )
            summary.std_culprits[key] = float(culprits.std()) if culprits.size else 0.0
    return summary


@dataclass(frozen=True)
class CorrelationCdfs:
    """Fleet-level CDFs of the per-box median correlations (Fig. 3)."""

    intra_cpu: Ecdf
    intra_ram: Ecdf
    inter_all: Ecdf
    inter_pair: Ecdf

    def means(self) -> Dict[str, float]:
        """Mean of the per-box medians (paper: 0.26, 0.24, 0.30, 0.62)."""
        return {
            "intra_cpu": self.intra_cpu.mean,
            "intra_ram": self.intra_ram.mean,
            "inter_all": self.inter_all.mean,
            "inter_pair": self.inter_pair.mean,
        }


def correlation_cdfs(
    fleet: FleetTrace,
    first_windows: Optional[int] = None,
    absolute: bool = False,
) -> CorrelationCdfs:
    """Compute the Fig. 3 correlation CDFs across all boxes of a fleet.

    Boxes that cannot form a pair of a given type (e.g. single-VM boxes have
    no intra pairs) are skipped for that CDF only.
    """
    collected: Dict[str, List[float]] = {
        "intra_cpu": [],
        "intra_ram": [],
        "inter_all": [],
        "inter_pair": [],
    }
    for box in fleet:
        scoped = _scope(box, first_windows)
        cpu = [vm.cpu_usage for vm in scoped.vms]
        ram = [vm.ram_usage for vm in scoped.vms]
        decomposition = decompose_box_correlations(cpu, ram, absolute=absolute)
        for key, value in decomposition.as_dict().items():
            if np.isfinite(value):
                collected[key].append(value)
    missing = [key for key, values in collected.items() if not values]
    if missing:
        raise ValueError(
            f"fleet has no boxes with enough VMs for correlation types: {missing}"
        )
    return CorrelationCdfs(
        intra_cpu=Ecdf.from_samples(collected["intra_cpu"]),
        intra_ram=Ecdf.from_samples(collected["intra_ram"]),
        inter_all=Ecdf.from_samples(collected["inter_all"]),
        inter_pair=Ecdf.from_samples(collected["inter_pair"]),
    )
