"""Assignment: map ranked incidents onto responder queues.

An assignment policy decides *who* works an incident once scoring has
decided *what matters most*.  Policies are frozen dataclasses (swappable,
fingerprintable) and purely deterministic — the same ranked incidents
always land on the same queues, which is what makes the fleet-level
assignment digest bit-identical across worker counts.

Two strategies cover the realistic shapes:

* ``round_robin`` — deal incidents to queues in score order, so load is
  balanced and the highest-priority incidents spread across responders
  rather than piling onto queue 0.
* ``sticky`` — hash the box id onto a queue, so one box's incidents
  always reach the same responder (ownership beats balance: the
  recurrence context that drives the score lives with one person).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence

from repro.tickets.incidents import Incident

__all__ = ["ASSIGN_STRATEGIES", "AssignPolicy"]

#: The registered strategies, in documentation order.
ASSIGN_STRATEGIES = ("round_robin", "sticky")


@dataclass(frozen=True)
class AssignPolicy:
    """Deterministic incident → queue mapping.

    Attributes
    ----------
    n_queues:
        Number of responder queues the fleet routes into.
    strategy:
        ``round_robin`` (deal by score rank) or ``sticky`` (hash the box
        id, one box = one queue).
    """

    n_queues: int = 2
    strategy: str = "round_robin"

    def __post_init__(self) -> None:
        if self.n_queues < 1:
            raise ValueError(f"n_queues must be positive, got {self.n_queues}")
        if self.strategy not in ASSIGN_STRATEGIES:
            raise ValueError(
                f"unknown assignment strategy {self.strategy!r}; "
                f"expected one of {ASSIGN_STRATEGIES}"
            )

    def assign(self, ranked: Sequence[Incident]) -> List[int]:
        """Queue index for each incident of ``ranked`` (score order).

        Stable and deterministic: round-robin depends only on rank,
        sticky only on the box id's BLAKE2b hash.
        """
        if self.strategy == "round_robin":
            return [rank % self.n_queues for rank in range(len(ranked))]
        return [self._sticky_queue(incident.box_id) for incident in ranked]

    def _sticky_queue(self, box_id: str) -> int:
        digest = hashlib.blake2b(box_id.encode(), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.n_queues
