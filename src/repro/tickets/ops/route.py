"""Routing and SLA clocks: turn ranked incidents into worked incidents.

The router plays a deterministic single-responder-per-queue schedule over
one box's scored incidents:

1. :class:`~repro.tickets.ops.scoring.ScoringPolicy` ranks the incidents,
2. :class:`~repro.tickets.ops.assign.AssignPolicy` deals them to queues,
3. each queue serves its incidents in (arrival window, rank) order, one
   at a time, spending :attr:`SlaPolicy.service_windows` per incident.

Every incident gets an :class:`SlaClock`: the window it was acknowledged
(picked up by its queue's responder) and resolved, checked against ack /
resolve deadlines measured *in ticketing windows* from the incident's
start.  Deadlines convert to wall-clock minutes through
``TicketPolicy.window_minutes`` — the day-ahead cadence literature
(Leverger et al., arXiv 1811.02215) sizes operator windows the same way,
per monitoring period rather than per second.

Breaches surface in :mod:`repro.obs` (``sla.breaches``,
``sla.ack_breaches``, ``sla.resolve_breaches``) from the fleet loop, so a
degraded run's metrics snapshot still carries the breach picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.tickets.incidents import Incident
from repro.tickets.ops.assign import AssignPolicy
from repro.tickets.ops.scoring import ScoringPolicy
from repro.tickets.policy import TicketPolicy

__all__ = ["RoutedIncident", "SlaClock", "SlaPolicy", "route_incidents"]


@dataclass(frozen=True)
class SlaPolicy:
    """Deadlines and service time, all in ticketing windows.

    Attributes
    ----------
    ack_windows:
        Windows from incident start within which it must be acknowledged.
    resolve_windows:
        Windows from incident start within which it must be resolved.
    service_windows:
        Responder time one incident occupies its queue for.
    """

    ack_windows: int = 1
    resolve_windows: int = 4
    service_windows: int = 1

    def __post_init__(self) -> None:
        if self.ack_windows < 0 or self.resolve_windows < 0:
            raise ValueError("SLA deadlines must be non-negative")
        if self.service_windows < 1:
            raise ValueError("service_windows must be positive")
        if self.resolve_windows < self.ack_windows:
            raise ValueError(
                "resolve_windows must be at least ack_windows "
                f"(got ack={self.ack_windows}, resolve={self.resolve_windows})"
            )

    def deadlines_minutes(self, policy: TicketPolicy) -> Tuple[int, int]:
        """(ack, resolve) deadlines in wall-clock minutes under ``policy``."""
        return (
            self.ack_windows * policy.window_minutes,
            self.resolve_windows * policy.window_minutes,
        )


@dataclass(frozen=True)
class SlaClock:
    """One incident's acknowledged/resolved windows versus its deadlines."""

    start_window: int
    ack_window: int
    resolve_window: int
    ack_deadline: int
    resolve_deadline: int

    @property
    def ack_breached(self) -> bool:
        return self.ack_window > self.ack_deadline

    @property
    def resolve_breached(self) -> bool:
        return self.resolve_window > self.resolve_deadline

    @property
    def breached(self) -> bool:
        return self.ack_breached or self.resolve_breached

    def to_dict(self) -> dict:
        return {
            "start_window": self.start_window,
            "ack_window": self.ack_window,
            "resolve_window": self.resolve_window,
            "ack_deadline": self.ack_deadline,
            "resolve_deadline": self.resolve_deadline,
        }

    @staticmethod
    def from_dict(raw: dict) -> "SlaClock":
        return SlaClock(
            start_window=int(raw["start_window"]),
            ack_window=int(raw["ack_window"]),
            resolve_window=int(raw["resolve_window"]),
            ack_deadline=int(raw["ack_deadline"]),
            resolve_deadline=int(raw["resolve_deadline"]),
        )


@dataclass(frozen=True)
class RoutedIncident:
    """One incident after scoring, assignment and the SLA-clock schedule."""

    incident: Incident
    rank: int  # 0 = highest score on the box
    score: float
    queue: int
    clock: SlaClock


def route_incidents(
    incidents: Sequence[Incident],
    ticket_policy: TicketPolicy,
    scoring: ScoringPolicy,
    assign: AssignPolicy,
    sla: SlaPolicy,
    n_vms: int,
) -> List[RoutedIncident]:
    """Score, assign and SLA-clock one box's incidents.

    ``incidents`` must be in chronological order (as
    :func:`repro.tickets.incidents.group_incidents` returns them) — the
    chronological index is the recurrence signal.  Returns routed
    incidents in rank (descending score) order; ties break by start
    window then chronological index, so the ordering is total and
    deterministic.
    """
    scored = [
        (
            scoring.score(incident, ticket_policy, prior_incidents=index, n_vms=n_vms),
            incident,
            index,
        )
        for index, incident in enumerate(incidents)
    ]
    scored.sort(key=lambda item: (-item[0], item[1].start_window, item[2]))
    ranked = [incident for _, incident, _ in scored]
    queues = assign.assign(ranked)

    # One responder per queue: serve in (arrival, rank) order, each
    # incident occupying the responder for service_windows.
    order = sorted(
        range(len(ranked)),
        key=lambda rank: (ranked[rank].start_window, rank),
    )
    responder_free = [0] * assign.n_queues
    clocks: List[SlaClock] = [None] * len(ranked)  # type: ignore[list-item]
    for rank in order:
        incident = ranked[rank]
        queue = queues[rank]
        ack = max(incident.start_window, responder_free[queue])
        resolve = ack + sla.service_windows
        responder_free[queue] = resolve
        clocks[rank] = SlaClock(
            start_window=incident.start_window,
            ack_window=ack,
            resolve_window=resolve,
            ack_deadline=incident.start_window + sla.ack_windows,
            resolve_deadline=incident.start_window + sla.resolve_windows,
        )

    return [
        RoutedIncident(
            incident=incident,
            rank=rank,
            score=score,
            queue=queues[rank],
            clock=clocks[rank],
        )
        for rank, (score, incident, _) in enumerate(scored)
    ]
