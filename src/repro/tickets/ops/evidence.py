"""Per-incident evidence bundles, served from the artifact store.

An operator opening an incident needs to see *why it fired*: the ticket
records, the usage context around the incident's windows, the policy that
tripped, and — when an ATM run produced them — the forecast and resize
decisions that were (or were not) in force.  An :class:`EvidenceBundle`
packages exactly that, and persists through :mod:`repro.store` under its
own content-addressed stage:

* the **data fingerprint** hashes the usage context slice the bundle
  explains (a poisoned or different trace can never serve the bundle),
* the **config fingerprint** canonicalizes the ops configuration plus the
  incident's identity (box, span, chronological index),

so a resumed run replays byte-identical bundles from disk, and a bundle
is resolvable later by reconstructing its key from the same inputs —
no side index required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.store import (
    ArtifactKey,
    config_fingerprint,
    data_fingerprint,
    register_codec,
)
from repro.tickets.monitor import TicketRecord
from repro.tickets.ops.route import RoutedIncident, SlaClock
from repro.trace.model import BoxTrace, Resource

__all__ = [
    "EVIDENCE_STAGE",
    "EvidenceBundle",
    "build_evidence",
    "evidence_key",
]

#: Artifact-store stage name of evidence bundles.
EVIDENCE_STAGE = "evidence"


@dataclass(frozen=True)
class EvidenceBundle:
    """Everything that explains one routed incident.

    ``usage_context`` is the box's full ``(2M, W)`` usage slice over
    ``[context_lo, context_hi)`` — the incident's windows plus the
    surrounding context — in :meth:`BoxTrace.usage_matrix` row order.
    ``predicted`` / ``allocations`` are optional: populated when the ops
    run rides on an ATM run whose forecast and resize decisions explain
    why the tickets fired anyway (or were averted), absent in pure
    monitoring runs.
    """

    box_id: str
    start_window: int
    end_window: int
    rank: int
    score: float
    queue: int
    clock: SlaClock
    threshold_pct: float
    records: Tuple[TicketRecord, ...]
    context_lo: int
    context_hi: int
    usage_context: np.ndarray
    predicted: Optional[np.ndarray] = None
    allocations: Optional[np.ndarray] = None

    @property
    def n_tickets(self) -> int:
        return len(self.records)


def evidence_key(usage_context: np.ndarray, config, box_id: str,
                 start_window: int, end_window: int, index: int,
                 forecast_fp: Optional[str] = None) -> ArtifactKey:
    """Content address of one incident's evidence bundle.

    ``config`` is the governing :class:`~repro.tickets.ops.pipeline.OpsConfig`;
    ``index`` the incident's chronological index on its box (distinct
    incidents with identical spans — different resources, say — must not
    collide).  ``forecast_fp`` identifies the ATM box-result artifact whose
    forecast/allocations ride in the bundle; folded in only when present,
    so forecast-free bundles keep their historical keys.
    """
    payload = {
        "config": config,
        "box_id": box_id,
        "span": [start_window, end_window],
        "index": index,
    }
    if forecast_fp is not None:
        payload["forecast_fp"] = forecast_fp
    return ArtifactKey(
        stage=EVIDENCE_STAGE,
        data_fp=data_fingerprint(usage_context),
        config_fp=config_fingerprint(payload),
    )


def build_evidence(
    box: BoxTrace,
    routed: RoutedIncident,
    threshold_pct: float,
    context_windows: int,
    predicted: Optional[np.ndarray] = None,
    allocations: Optional[np.ndarray] = None,
) -> EvidenceBundle:
    """Assemble the evidence bundle for one routed incident on ``box``."""
    incident = routed.incident
    lo = max(0, incident.start_window - context_windows)
    hi = min(box.n_windows, incident.end_window + context_windows + 1)
    usage = np.ascontiguousarray(box.usage_matrix()[:, lo:hi], dtype=float)
    return EvidenceBundle(
        box_id=box.box_id,
        start_window=incident.start_window,
        end_window=incident.end_window,
        rank=routed.rank,
        score=routed.score,
        queue=routed.queue,
        clock=routed.clock,
        threshold_pct=threshold_pct,
        records=incident.tickets,
        context_lo=lo,
        context_hi=hi,
        usage_context=usage,
        predicted=None if predicted is None else np.asarray(predicted, dtype=float),
        allocations=(
            None if allocations is None else np.asarray(allocations, dtype=float)
        ),
    )


# ----------------------------------------------------------------- codec
def _encode_record(record: TicketRecord) -> dict:
    return {
        "box_id": record.box_id,
        "vm_id": record.vm_id,
        "resource": record.resource.value,
        "window": int(record.window),
        "usage_pct": float(record.usage_pct),
    }


def _decode_record(raw: dict) -> TicketRecord:
    return TicketRecord(
        box_id=str(raw["box_id"]),
        vm_id=str(raw["vm_id"]),
        resource=Resource(raw["resource"]),
        window=int(raw["window"]),
        usage_pct=float(raw["usage_pct"]),
    )


def _encode_evidence(bundle: EvidenceBundle):
    arrays = {"usage_context": np.asarray(bundle.usage_context, dtype=float)}
    if bundle.predicted is not None:
        arrays["predicted"] = np.asarray(bundle.predicted, dtype=float)
    if bundle.allocations is not None:
        arrays["allocations"] = np.asarray(bundle.allocations, dtype=float)
    meta = {
        "box_id": bundle.box_id,
        "start_window": int(bundle.start_window),
        "end_window": int(bundle.end_window),
        "rank": int(bundle.rank),
        "score": float(bundle.score),
        "queue": int(bundle.queue),
        "clock": bundle.clock.to_dict(),
        "threshold_pct": float(bundle.threshold_pct),
        "records": [_encode_record(r) for r in bundle.records],
        "context_lo": int(bundle.context_lo),
        "context_hi": int(bundle.context_hi),
    }
    return arrays, meta


def _decode_evidence(arrays, meta) -> EvidenceBundle:
    return EvidenceBundle(
        box_id=str(meta["box_id"]),
        start_window=int(meta["start_window"]),
        end_window=int(meta["end_window"]),
        rank=int(meta["rank"]),
        score=float(meta["score"]),
        queue=int(meta["queue"]),
        clock=SlaClock.from_dict(meta["clock"]),
        threshold_pct=float(meta["threshold_pct"]),
        records=tuple(_decode_record(r) for r in meta["records"]),
        context_lo=int(meta["context_lo"]),
        context_hi=int(meta["context_hi"]),
        usage_context=np.array(arrays["usage_context"], dtype=float),
        predicted=(
            np.array(arrays["predicted"], dtype=float)
            if "predicted" in arrays
            else None
        ),
        allocations=(
            np.array(arrays["allocations"], dtype=float)
            if "allocations" in arrays
            else None
        ),
    )


register_codec(EVIDENCE_STAGE, _encode_evidence, _decode_evidence)
