"""The incident-operations fleet loop: monitor → incidents → route → resolve.

This is the operational half the ROADMAP names: per box, raw tickets are
extracted (:mod:`repro.tickets.monitor`), collapsed into incidents
(:mod:`repro.tickets.incidents`), scored and dealt to responder queues
(:mod:`~repro.tickets.ops.scoring` / :mod:`~repro.tickets.ops.assign`),
played through the SLA-clock schedule (:mod:`~repro.tickets.ops.route`),
and explained by content-addressed evidence bundles
(:mod:`~repro.tickets.ops.evidence`).

The fleet loop reuses the whole scaling substrate:

* per-box work fans out through :class:`repro.core.executor.FleetExecutor`
  (``jobs``), accepting :class:`~repro.store.shards.ShardedFleet` refs so
  workers memory-map their boxes;
* results stream through :func:`repro.core.streaming.fleet_results` and
  fold into fixed-size reducers — per-box payloads (ticket records,
  usage slices) never accumulate in the parent, so the loop is
  constant-memory at 6k boxes;
* each box's outcome is a ``ticket_ops`` artifact in :mod:`repro.store`
  (``--resume`` serves finished boxes), and every incident's evidence
  bundle persists under its own fingerprint;
* breach/assignment telemetry lands in :mod:`repro.obs`
  (``sla.breaches``, ``sla.ack_breaches``, ``sla.resolve_breaches``,
  ``route.assignments``, ``sla.open_incidents``) inside the workers, and
  the executor merges worker snapshots — ``jobs=N`` reports the same
  counters as serial.

Determinism: scoring, assignment and the SLA schedule are pure functions
of one box's trace and the :class:`OpsConfig`, and the fleet digests fold
per-box digests in fleet box order — so the assignment and evidence
digests are bit-identical at any worker count.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.core.executor import FleetExecutor
from repro.core.streaming import fleet_results
from repro.store import ArtifactKey, config_fingerprint, default_store, register_codec
from repro.tickets.incidents import group_incidents
from repro.tickets.monitor import tickets_for_box
from repro.tickets.ops.assign import AssignPolicy
from repro.tickets.ops.evidence import build_evidence, evidence_key
from repro.tickets.ops.route import SlaPolicy, route_incidents
from repro.tickets.ops.scoring import ScoringPolicy
from repro.tickets.policy import DEFAULT_POLICY, TicketPolicy
from repro.trace.model import FleetTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import AtmConfig
    from repro.store.shards import ShardedFleet

__all__ = [
    "TICKET_OPS_STAGE",
    "TOP_INCIDENTS_KEPT",
    "BoxOpsResult",
    "FleetOpsResult",
    "IncidentRow",
    "OpsConfig",
    "run_box_ops",
    "run_fleet_ops",
]

#: Artifact-store stage of one box's complete ops outcome.
TICKET_OPS_STAGE = "ticket_ops"

#: Fleet-level "worst incidents" leaderboard size (a bounded reducer: the
#: fleet fold keeps the top N rows, never a per-incident list).
TOP_INCIDENTS_KEPT = 10


@dataclass(frozen=True)
class OpsConfig:
    """Everything the operations loop is parameterized by.

    Frozen so it fingerprints through :func:`repro.store.config_fingerprint`
    — the ``ticket_ops`` and ``evidence`` artifact keys both fold it in.
    """

    policy: TicketPolicy = DEFAULT_POLICY
    max_gap_windows: int = 1
    scoring: ScoringPolicy = ScoringPolicy()
    assign: AssignPolicy = AssignPolicy()
    sla: SlaPolicy = SlaPolicy()
    #: Usage windows of context captured on each side of an incident in
    #: its evidence bundle.
    context_windows: int = 4
    #: When set, :func:`run_box_ops` probes the persistent store for this
    #: ATM configuration's ``box_result`` artifact (a prior ``predict``
    #: run against the same store) and attaches its forecast and resize
    #: allocations to the evidence bundles of incidents inside the
    #: forecast horizon.  ``None`` (the default) keeps bundles and keys
    #: exactly as before.
    atm: Optional["AtmConfig"] = None

    def __post_init__(self) -> None:
        if self.max_gap_windows < 0:
            raise ValueError("max_gap_windows must be non-negative")
        if self.context_windows < 0:
            raise ValueError("context_windows must be non-negative")


@dataclass(frozen=True)
class IncidentRow:
    """One routed incident's summary line (the leaderboard/table unit)."""

    box_id: str
    start_window: int
    end_window: int
    n_tickets: int
    n_vms: int
    score: float
    queue: int
    ack_window: int
    resolve_window: int
    ack_breached: bool
    resolve_breached: bool

    def to_dict(self) -> dict:
        return {
            "box_id": self.box_id,
            "start_window": self.start_window,
            "end_window": self.end_window,
            "n_tickets": self.n_tickets,
            "n_vms": self.n_vms,
            "score": self.score,
            "queue": self.queue,
            "ack_window": self.ack_window,
            "resolve_window": self.resolve_window,
            "ack_breached": self.ack_breached,
            "resolve_breached": self.resolve_breached,
        }

    @staticmethod
    def from_dict(raw: dict) -> "IncidentRow":
        return IncidentRow(
            box_id=str(raw["box_id"]),
            start_window=int(raw["start_window"]),
            end_window=int(raw["end_window"]),
            n_tickets=int(raw["n_tickets"]),
            n_vms=int(raw["n_vms"]),
            score=float(raw["score"]),
            queue=int(raw["queue"]),
            ack_window=int(raw["ack_window"]),
            resolve_window=int(raw["resolve_window"]),
            ack_breached=bool(raw["ack_breached"]),
            resolve_breached=bool(raw["resolve_breached"]),
        )


@dataclass(frozen=True)
class BoxOpsResult:
    """One box's complete ops outcome — small, picklable, store-codable.

    Carries counts, digests and evidence *keys* only; the heavy evidence
    payloads live in the artifact store, resolvable by reconstructing
    :class:`~repro.store.ArtifactKey` from the ``(data_fp, config_fp)``
    pairs here.
    """

    box_id: str
    n_tickets: int
    n_incidents: int
    n_spatial: int
    queue_counts: Tuple[int, ...]
    ack_breaches: int
    resolve_breaches: int
    breached_incidents: int
    max_open: int
    assignment_digest: str
    #: ``(data_fp, config_fp)`` per incident, rank order.
    evidence_refs: Tuple[Tuple[str, str], ...]
    rows: Tuple[IncidentRow, ...]


def _assignment_digest(rows: Tuple[IncidentRow, ...]) -> str:
    payload = json.dumps([row.to_dict() for row in rows], sort_keys=True)
    return hashlib.blake2b(payload.encode(), digest_size=20).hexdigest()


def _max_open_incidents(routed) -> int:
    """Peak number of concurrently open incidents (start → resolve)."""
    events: List[Tuple[int, int]] = []
    for item in routed:
        events.append((item.incident.start_window, 1))
        events.append((item.clock.resolve_window, -1))
    # Close before open at the same window: resolution frees the slot.
    events.sort(key=lambda e: (e[0], e[1]))
    open_now = peak = 0
    for _, delta in events:
        open_now += delta
        peak = max(peak, open_now)
    return peak


def _box_ops_key(box, config: OpsConfig) -> ArtifactKey:
    from repro.core.stages import box_fingerprint

    return ArtifactKey(
        stage=TICKET_OPS_STAGE,
        data_fp=box_fingerprint(box),
        config_fp=config_fingerprint(config),
    )


def _probe_forecast_evidence(box, atm, store):
    """Fetch one box's stored ATM outcome for evidence attachment.

    Returns ``(predicted, allocations, forecast_fp)`` — the ``(2M, H)``
    forecast matrix and ``(2M,)`` allocation vector stacked CPU-then-RAM
    (the :meth:`BoxTrace.usage_matrix` row order evidence bundles use) —
    or ``(None, None, None)`` when no complete artifact is materialized.
    Ops runs never *compute* forecasts; they only explain incidents with
    whatever a prior ATM run already persisted.
    """
    from repro.core.stages import box_result_key
    from repro.trace.model import Resource

    key = box_result_key(box, atm)
    cached = store.get(key, memory=False)
    if cached is None:
        return None, None, None
    result, _events = cached
    if result is None:
        return None, None, None
    resources = (Resource.CPU, Resource.RAM)
    if any(
        r not in result.predicted or r not in result.allocations
        for r in resources
    ):
        return None, None, None
    predicted = np.vstack([np.asarray(result.predicted[r], float) for r in resources])
    allocations = np.concatenate(
        [np.asarray(result.allocations[r], float).ravel() for r in resources]
    )
    return predicted, allocations, f"{key.data_fp}:{key.config_fp}"


def run_box_ops(box, config: OpsConfig, resume: bool = False) -> BoxOpsResult:
    """The per-box unit of work; module-level so pool workers can pickle it.

    ``box`` may be a :class:`repro.store.shards.BoxShardRef` — the shard
    is memory-mapped here in the worker.  With a persistent store the
    complete outcome is materialized as a ``ticket_ops`` artifact and
    every incident's evidence bundle under its own fingerprint;
    ``resume=True`` serves finished boxes from the store (counted as
    ``ops.resume.hits``) with identical digests and evidence keys.
    """
    from repro.store.shards import resolve_box

    box = resolve_box(box)
    store = default_store()
    key = _box_ops_key(box, config) if store.persistent else None
    if resume and key is not None:
        cached = store.get(key, memory=False)
        if cached is not None:
            obs.inc("ops.resume.hits")
            _record_box_metrics(cached)
            return cached

    predicted = allocations = forecast_fp = None
    if config.atm is not None and store.persistent:
        predicted, allocations, forecast_fp = _probe_forecast_evidence(
            box, config.atm, store
        )
    # Windows the stored forecast actually covers: incidents outside the
    # horizon get forecast-free bundles (the forecast says nothing there).
    forecast_lo = forecast_hi = -1
    if predicted is not None:
        forecast_lo = config.atm.training_windows
        forecast_hi = forecast_lo + predicted.shape[1]

    with obs.span("ops.box_run"):
        records = tickets_for_box(box, config.policy)
        incidents = group_incidents(records, max_gap_windows=config.max_gap_windows)
        routed = route_incidents(
            incidents,
            config.policy,
            config.scoring,
            config.assign,
            config.sla,
            n_vms=box.n_vms,
        )

        queue_counts = [0] * config.assign.n_queues
        ack_breaches = resolve_breaches = breached = 0
        rows: List[IncidentRow] = []
        evidence_refs: List[Tuple[str, str]] = []
        # Chronological index per routed incident: evidence keys must not
        # collide for distinct incidents sharing a span.
        chrono_index = {id(incident): i for i, incident in enumerate(incidents)}
        for item in routed:
            queue_counts[item.queue] += 1
            ack_breaches += item.clock.ack_breached
            resolve_breaches += item.clock.resolve_breached
            breached += item.clock.breached
            rows.append(
                IncidentRow(
                    box_id=box.box_id,
                    start_window=item.incident.start_window,
                    end_window=item.incident.end_window,
                    n_tickets=item.incident.n_tickets,
                    n_vms=item.incident.n_vms,
                    score=item.score,
                    queue=item.queue,
                    ack_window=item.clock.ack_window,
                    resolve_window=item.clock.resolve_window,
                    ack_breached=item.clock.ack_breached,
                    resolve_breached=item.clock.resolve_breached,
                )
            )
            in_horizon = (
                predicted is not None
                and item.incident.end_window >= forecast_lo
                and item.incident.start_window < forecast_hi
            )
            if in_horizon:
                obs.inc("ops.evidence.forecasts")
            bundle = build_evidence(
                box,
                item,
                config.policy.threshold_pct,
                config.context_windows,
                predicted=predicted if in_horizon else None,
                allocations=allocations if in_horizon else None,
            )
            ev_key = evidence_key(
                bundle.usage_context,
                config,
                box.box_id,
                item.incident.start_window,
                item.incident.end_window,
                chrono_index[id(item.incident)],
                forecast_fp=forecast_fp if in_horizon else None,
            )
            if store.persistent:
                store.put(ev_key, bundle, memory=False)
            evidence_refs.append((ev_key.data_fp, ev_key.config_fp))

        result_rows = tuple(rows)
        result = BoxOpsResult(
            box_id=box.box_id,
            n_tickets=len(records),
            n_incidents=len(incidents),
            n_spatial=sum(1 for i in incidents if i.is_spatial),
            queue_counts=tuple(queue_counts),
            ack_breaches=ack_breaches,
            resolve_breaches=resolve_breaches,
            breached_incidents=breached,
            max_open=_max_open_incidents(routed),
            assignment_digest=_assignment_digest(result_rows),
            evidence_refs=tuple(evidence_refs),
            rows=result_rows,
        )
    if key is not None:
        store.put(key, result, memory=False)
    _record_box_metrics(result)
    return result


def _record_box_metrics(result: BoxOpsResult) -> None:
    """Publish one box's ops telemetry (in the worker; merged by the executor)."""
    obs.inc("ops.boxes")
    obs.inc("ops.tickets", result.n_tickets)
    obs.inc("ops.incidents", result.n_incidents)
    obs.inc("route.assignments", result.n_incidents)
    obs.inc("sla.breaches", result.breached_incidents)
    obs.inc("sla.ack_breaches", result.ack_breaches)
    obs.inc("sla.resolve_breaches", result.resolve_breaches)
    obs.gauge_max("sla.open_incidents", float(result.max_open))


@dataclass
class FleetOpsResult:
    """Streaming-folded fleet aggregate of the operations loop."""

    config: OpsConfig
    boxes: int = 0
    tickets: int = 0
    incidents: int = 0
    spatial_incidents: int = 0
    queue_counts: List[int] = field(default_factory=list)
    queue_breaches: List[int] = field(default_factory=list)
    ack_breaches: int = 0
    resolve_breaches: int = 0
    breached_incidents: int = 0
    max_open: int = 0
    evidence_bundles: int = 0
    #: Fleet-order folds of the per-box digests (bit-identical at any
    #: worker count; the serial-vs-parallel acceptance check).
    assignment_digest: str = ""
    evidence_digest: str = ""
    #: The fleet's worst incidents by score (bounded leaderboard).
    top_incidents: List[IncidentRow] = field(default_factory=list)

    def __post_init__(self) -> None:
        n = self.config.assign.n_queues
        if not self.queue_counts:
            self.queue_counts = [0] * n
        if not self.queue_breaches:
            self.queue_breaches = [0] * n

    # ------------------------------------------------------------- ratios
    def tickets_per_incident(self) -> Optional[float]:
        """Dedup ratio, ``None`` on an incident-free fleet (JSON-safe)."""
        return self.tickets / self.incidents if self.incidents else None

    def spatial_incident_share(self) -> Optional[float]:
        return self.spatial_incidents / self.incidents if self.incidents else None

    def breach_rate(self) -> Optional[float]:
        return (
            self.breached_incidents / self.incidents if self.incidents else None
        )

    # --------------------------------------------------------------- fold
    def fold(self, result: BoxOpsResult) -> None:
        """Fold one box's outcome in (fleet box order)."""
        self.boxes += 1
        self.tickets += result.n_tickets
        self.incidents += result.n_incidents
        self.spatial_incidents += result.n_spatial
        for queue, count in enumerate(result.queue_counts):
            self.queue_counts[queue] += count
        for row in result.rows:
            if row.ack_breached or row.resolve_breached:
                self.queue_breaches[row.queue] += 1
        self.ack_breaches += result.ack_breaches
        self.resolve_breaches += result.resolve_breaches
        self.breached_incidents += result.breached_incidents
        self.max_open = max(self.max_open, result.max_open)
        self.evidence_bundles += len(result.evidence_refs)
        self._fold_digests(result)
        self._fold_top(result.rows)

    def _fold_digests(self, result: BoxOpsResult) -> None:
        assignment = hashlib.blake2b(digest_size=20)
        assignment.update(self.assignment_digest.encode())
        assignment.update(result.assignment_digest.encode())
        self.assignment_digest = assignment.hexdigest()
        evidence = hashlib.blake2b(digest_size=20)
        evidence.update(self.evidence_digest.encode())
        for data_fp, config_fp in result.evidence_refs:
            evidence.update(data_fp.encode())
            evidence.update(config_fp.encode())
        self.evidence_digest = evidence.hexdigest()

    def _fold_top(self, rows: Tuple[IncidentRow, ...]) -> None:
        merged = self.top_incidents + list(rows)
        merged.sort(
            key=lambda row: (-row.score, row.box_id, row.start_window, row.queue)
        )
        self.top_incidents = merged[:TOP_INCIDENTS_KEPT]


def run_fleet_ops(
    fleet: Union[FleetTrace, "ShardedFleet"],
    config: Optional[OpsConfig] = None,
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
    resume: bool = False,
) -> FleetOpsResult:
    """Run the monitor → incident → route → resolve loop over a fleet.

    Every box is eligible (the loop needs no training windows).  The fold
    is shared verbatim between the streaming and the materialized path
    (:func:`repro.core.streaming.fleet_results`), so serial, parallel and
    sharded runs produce identical aggregates and digests.
    """
    cfg = config or OpsConfig()
    out = FleetOpsResult(config=cfg)
    if hasattr(fleet, "box_refs"):
        items = list(fleet.box_refs())
    else:
        items = list(fleet)
    if not items:
        raise ValueError("fleet contains no boxes")
    executor = FleetExecutor(jobs=jobs, chunksize=chunksize)
    with obs.span("ops.fleet"):
        for result in fleet_results(executor, run_box_ops, items, cfg, resume):
            out.fold(result)
    return out


# ----------------------------------------------------------------- codec
def _encode_box_ops(result: BoxOpsResult):
    meta = {
        "box_id": result.box_id,
        "n_tickets": result.n_tickets,
        "n_incidents": result.n_incidents,
        "n_spatial": result.n_spatial,
        "queue_counts": list(result.queue_counts),
        "ack_breaches": result.ack_breaches,
        "resolve_breaches": result.resolve_breaches,
        "breached_incidents": result.breached_incidents,
        "max_open": result.max_open,
        "assignment_digest": result.assignment_digest,
        "evidence_refs": [list(pair) for pair in result.evidence_refs],
        "rows": [row.to_dict() for row in result.rows],
    }
    return {}, meta


def _decode_box_ops(arrays, meta) -> BoxOpsResult:
    return BoxOpsResult(
        box_id=str(meta["box_id"]),
        n_tickets=int(meta["n_tickets"]),
        n_incidents=int(meta["n_incidents"]),
        n_spatial=int(meta["n_spatial"]),
        queue_counts=tuple(int(c) for c in meta["queue_counts"]),
        ack_breaches=int(meta["ack_breaches"]),
        resolve_breaches=int(meta["resolve_breaches"]),
        breached_incidents=int(meta["breached_incidents"]),
        max_open=int(meta["max_open"]),
        assignment_digest=str(meta["assignment_digest"]),
        evidence_refs=tuple(
            (str(pair[0]), str(pair[1])) for pair in meta["evidence_refs"]
        ),
        rows=tuple(IncidentRow.from_dict(raw) for raw in meta["rows"]),
    )


register_codec(TICKET_OPS_STAGE, _encode_box_ops, _decode_box_ops)
