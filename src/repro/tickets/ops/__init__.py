"""Incident operations: route, SLA-clock and explain the fleet's tickets.

The operational half of ticket management — the paper's premise is that
correlated tickets are *managed* incidents, not raw alarms.  This package
closes the ``monitor → incidents → route → resolve`` loop:

* :mod:`repro.tickets.ops.scoring` — severity × recurrence × criticality
  triage scores (swappable :class:`ScoringPolicy`).
* :mod:`repro.tickets.ops.assign`  — deterministic incident → queue
  assignment (:class:`AssignPolicy`: round-robin or sticky-by-box).
* :mod:`repro.tickets.ops.route`   — the SLA-clock schedule
  (:class:`SlaPolicy`, :class:`SlaClock`) with breach detection.
* :mod:`repro.tickets.ops.evidence` — per-incident evidence bundles in
  the content-addressed artifact store.
* :mod:`repro.tickets.ops.pipeline` — the streaming fleet loop
  (:func:`run_fleet_ops`) behind the CLI ``tickets`` command.
"""

from repro.tickets.ops.assign import ASSIGN_STRATEGIES, AssignPolicy
from repro.tickets.ops.evidence import (
    EVIDENCE_STAGE,
    EvidenceBundle,
    build_evidence,
    evidence_key,
)
from repro.tickets.ops.pipeline import (
    TICKET_OPS_STAGE,
    BoxOpsResult,
    FleetOpsResult,
    IncidentRow,
    OpsConfig,
    run_box_ops,
    run_fleet_ops,
)
from repro.tickets.ops.route import (
    RoutedIncident,
    SlaClock,
    SlaPolicy,
    route_incidents,
)
from repro.tickets.ops.scoring import ScoringPolicy, incident_severity

__all__ = [
    "ASSIGN_STRATEGIES",
    "EVIDENCE_STAGE",
    "TICKET_OPS_STAGE",
    "AssignPolicy",
    "BoxOpsResult",
    "EvidenceBundle",
    "FleetOpsResult",
    "IncidentRow",
    "OpsConfig",
    "RoutedIncident",
    "ScoringPolicy",
    "SlaClock",
    "SlaPolicy",
    "build_evidence",
    "evidence_key",
    "incident_severity",
    "route_incidents",
    "run_box_ops",
    "run_fleet_ops",
]
