"""Incident scoring: rank open incidents for triage.

The paper's Fig. 1 motivation is that correlated ticket storms make root
causes *hard to find*; an operations queue therefore needs an ordering —
which incident does a responder open first?  The policy here composes the
three signals the ROADMAP names, as a weighted product so any zeroed
weight removes a factor without collapsing the score to zero:

* **severity** — how far past the threshold the incident's tickets went
  (mean relative overshoot of its ticket usages over ``threshold_pct``);
* **recurrence** — how many incidents the same box already produced
  before this one (chronic boxes float upward, matching the per-incident
  labor economics of :mod:`repro.tickets.costs`: repeat offenders are
  where triage time goes);
* **box criticality** — the box's co-location level (VM count): the more
  tenants share the box, the wider the blast radius of the event.

Every component is normalized to ``>= 1`` so the product is monotone in
each raw signal and a weight of ``0`` neutralizes its factor exactly.
:class:`ScoringPolicy` is a frozen dataclass, so it fingerprints through
:func:`repro.store.config_fingerprint` like every other policy object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tickets.incidents import Incident
from repro.tickets.policy import TicketPolicy

__all__ = ["ScoringPolicy", "incident_severity"]


def incident_severity(incident: Incident, policy: TicketPolicy) -> float:
    """Mean relative overshoot of the incident's tickets (``>= 1.0``).

    ``1.0`` means the tickets barely crossed the threshold; ``2.0`` means
    their usage averaged twice the threshold.
    """
    overshoot = [
        max(0.0, ticket.usage_pct - policy.threshold_pct)
        for ticket in incident.tickets
    ]
    mean = sum(overshoot) / len(overshoot) if overshoot else 0.0
    return 1.0 + mean / policy.threshold_pct


@dataclass(frozen=True)
class ScoringPolicy:
    """Weighted-product triage score: severity × recurrence × criticality.

    Attributes
    ----------
    severity_weight, recurrence_weight, criticality_weight:
        Exponents of the three factors.  ``0`` removes a factor (its
        component is normalized to ``>= 1``, so ``x ** 0 == 1``).
    """

    severity_weight: float = 1.0
    recurrence_weight: float = 0.5
    criticality_weight: float = 0.5

    def __post_init__(self) -> None:
        for name in ("severity_weight", "recurrence_weight", "criticality_weight"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def score(
        self,
        incident: Incident,
        policy: TicketPolicy,
        prior_incidents: int,
        n_vms: int,
    ) -> float:
        """Triage priority of one incident (higher = route first).

        ``prior_incidents`` is the count of incidents the box produced
        before this one (chronological index); ``n_vms`` the box's
        co-location level.
        """
        if prior_incidents < 0:
            raise ValueError("prior_incidents must be non-negative")
        if n_vms < 1:
            raise ValueError("n_vms must be positive")
        severity = incident_severity(incident, policy)
        recurrence = 1.0 + float(prior_incidents)
        criticality = float(n_vms)
        return (
            severity**self.severity_weight
            * recurrence**self.recurrence_weight
            * criticality**self.criticality_weight
        )
