"""Ticket economics: translate ticket counts into operational cost.

The paper motivates ATM with the expense of ticket handling ("a significant
amount of manual labor is required for root-cause analysis"; refs [1], [2]).
This module provides the small cost model an adopter needs to turn the
reproduction's ticket-reduction percentages into money: per-ticket
resolution labor, a triage floor per ticketed box-day, and the (much
smaller) cost of the resizing actuations themselves.

Default constants follow the incident-labor literature the paper cites
(Giurgiu et al., CCGrid'14): a median of roughly an engineer-hour per
resolved incident.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TicketCostModel", "CostBreakdown"]


@dataclass(frozen=True)
class TicketCostModel:
    """Cost constants, all in the same currency unit.

    Attributes
    ----------
    cost_per_ticket:
        Marginal labor cost of inspecting/resolving one usage ticket.
    triage_cost_per_ticketed_day:
        Fixed queue/triage overhead for each box-day with at least one
        ticket (dispatching, dedup, correlation).
    cost_per_resize_action:
        Cost of one actuated limit change (automation runtime, audit).
    """

    cost_per_ticket: float = 75.0
    triage_cost_per_ticketed_day: float = 40.0
    cost_per_resize_action: float = 0.25

    def __post_init__(self) -> None:
        for name in ("cost_per_ticket", "triage_cost_per_ticketed_day",
                     "cost_per_resize_action"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def cost(self, tickets: int, ticketed_days: int = 0, resize_actions: int = 0) -> float:
        """Total operational cost of a period."""
        if min(tickets, ticketed_days, resize_actions) < 0:
            raise ValueError("counts must be non-negative")
        return (
            tickets * self.cost_per_ticket
            + ticketed_days * self.triage_cost_per_ticketed_day
            + resize_actions * self.cost_per_resize_action
        )

    def savings(
        self,
        tickets_before: int,
        tickets_after: int,
        ticketed_days_before: int = 0,
        ticketed_days_after: int = 0,
        resize_actions: int = 0,
    ) -> "CostBreakdown":
        """Net savings of running ATM versus the status quo."""
        before = self.cost(tickets_before, ticketed_days_before)
        after = self.cost(tickets_after, ticketed_days_after, resize_actions)
        return CostBreakdown(
            cost_before=before,
            cost_after=after,
            tickets_avoided=tickets_before - tickets_after,
            resize_actions=resize_actions,
        )


@dataclass(frozen=True)
class CostBreakdown:
    """Result of a savings computation."""

    cost_before: float
    cost_after: float
    tickets_avoided: int
    resize_actions: int

    @property
    def net_savings(self) -> float:
        return self.cost_before - self.cost_after

    @property
    def savings_percent(self) -> float:
        if self.cost_before <= 0:
            return float("nan")
        return 100.0 * self.net_savings / self.cost_before
