"""Incident grouping: collapse correlated ticket storms into root causes.

The paper's motivation (Fig. 1): when co-located VMs move together, their
tickets fire *together* — "the temporal and spatial dependencies among VMs
not only increase the number of tickets but also the difficulty in
identifying their root cause".  Operators therefore triage *incidents*, not
raw tickets.

This module implements the standard triage heuristic: tickets on the same
box are merged into one incident when they overlap in time (within a small
window gap) — a box-level resource event with several symptoms.  The
incident count is the better proxy for triage labor, while the raw ticket
count drives per-ticket resolution cost; both feed
:class:`repro.tickets.costs.TicketCostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.tickets.monitor import TicketRecord, tickets_for_box
from repro.tickets.policy import TicketPolicy
from repro.trace.model import BoxTrace, FleetTrace, Resource

__all__ = ["Incident", "group_incidents", "incidents_for_box", "fleet_incident_stats"]


@dataclass(frozen=True)
class Incident:
    """A group of temporally overlapping tickets on one box."""

    box_id: str
    start_window: int
    end_window: int
    tickets: Tuple[TicketRecord, ...]

    @property
    def n_tickets(self) -> int:
        return len(self.tickets)

    @property
    def n_vms(self) -> int:
        return len({t.vm_id for t in self.tickets})

    @property
    def resources(self) -> Tuple[Resource, ...]:
        return tuple(sorted({t.resource for t in self.tickets}, key=lambda r: r.value))

    @property
    def duration_windows(self) -> int:
        return self.end_window - self.start_window + 1

    @property
    def is_spatial(self) -> bool:
        """Did the event spill across multiple co-located VMs?"""
        return self.n_vms > 1


def group_incidents(
    records: Sequence[TicketRecord], max_gap_windows: int = 1
) -> List[Incident]:
    """Merge tickets of one box into incidents by temporal proximity.

    Two tickets belong to the same incident when their windows are at most
    ``max_gap_windows`` apart (counting through the tickets already in the
    incident) — single-linkage in time, which is how alert-dedup systems
    coalesce flapping alarms.
    """
    if max_gap_windows < 0:
        raise ValueError("max_gap_windows must be non-negative")
    if not records:
        return []
    box_ids = {r.box_id for r in records}
    if len(box_ids) != 1:
        raise ValueError(f"records span multiple boxes: {sorted(box_ids)}")
    ordered = sorted(records, key=lambda r: r.window)
    incidents: List[Incident] = []
    bucket: List[TicketRecord] = [ordered[0]]
    last_window = ordered[0].window
    for record in ordered[1:]:
        if record.window - last_window <= max_gap_windows:
            bucket.append(record)
            last_window = max(last_window, record.window)
        else:
            incidents.append(_finish(bucket))
            bucket = [record]
            # Reset the linkage anchor on new-bucket start: carrying the
            # previous incident's max across the boundary only happened to
            # work because records are pre-sorted.
            last_window = record.window
    incidents.append(_finish(bucket))
    return incidents


def _finish(bucket: List[TicketRecord]) -> Incident:
    windows = [t.window for t in bucket]
    return Incident(
        box_id=bucket[0].box_id,
        start_window=min(windows),
        end_window=max(windows),
        tickets=tuple(bucket),
    )


def incidents_for_box(
    box: BoxTrace,
    policy: TicketPolicy,
    max_gap_windows: int = 1,
    resources: Optional[Sequence[Resource]] = None,
) -> List[Incident]:
    """Extract and group a box's tickets in one call."""
    records = tickets_for_box(box, policy, resources=resources)
    return group_incidents(records, max_gap_windows=max_gap_windows)


def fleet_incident_stats(
    fleet: FleetTrace,
    policy: TicketPolicy,
    max_gap_windows: int = 1,
) -> dict:
    """Fleet-level triage picture: tickets vs incidents vs spatial spillover.

    Returns a dict with total tickets, total incidents, the deduplication
    ratio (tickets per incident — how much triage the correlation structure
    saves or costs), and the share of incidents touching multiple VMs (the
    paper's root-cause-difficulty indicator).  On a ticket-free fleet the
    two ratios are ``None`` (JSON ``null``) rather than ``float("nan")``:
    the dict feeds serialized reports, and NaN is not a standard JSON token.
    """
    total_tickets = 0
    total_incidents = 0
    spatial_incidents = 0
    for box in fleet:
        incidents = incidents_for_box(box, policy, max_gap_windows=max_gap_windows)
        total_incidents += len(incidents)
        total_tickets += sum(i.n_tickets for i in incidents)
        spatial_incidents += sum(1 for i in incidents if i.is_spatial)
    return {
        "tickets": total_tickets,
        "incidents": total_incidents,
        "tickets_per_incident": (
            total_tickets / total_incidents if total_incidents else None
        ),
        "spatial_incident_share": (
            spatial_incidents / total_incidents if total_incidents else None
        ),
    }
