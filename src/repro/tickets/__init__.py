"""Ticketing substrate: policies, monitoring, and the Section II analyses.

Usage tickets fire when a VM's resource utilization exceeds a threshold of
its allocated capacity during a 15-minute ticketing window.  This subpackage
turns usage/demand series into ticket events and reproduces the paper's
characterization study:

* :mod:`repro.tickets.policy` — threshold/window policies.
* :mod:`repro.tickets.monitor` — ticket extraction and counting.
* :mod:`repro.tickets.characterization` — Fig. 2 (ticket distribution,
  culprit VMs) and Fig. 3 (spatial-correlation CDFs).
* :mod:`repro.tickets.incidents` — correlated tickets grouped into
  triageable incidents.
* :mod:`repro.tickets.ops` — the operations loop (scoring, routing, SLA
  clocks, evidence bundles); imported on demand, not re-exported here,
  since it pulls in the executor/store substrate.
"""

from repro.tickets.costs import CostBreakdown, TicketCostModel
from repro.tickets.incidents import (
    Incident,
    fleet_incident_stats,
    group_incidents,
    incidents_for_box,
)
from repro.tickets.characterization import (
    BoxTicketStats,
    CorrelationCdfs,
    FleetTicketSummary,
    correlation_cdfs,
    fleet_ticket_summary,
)
from repro.tickets.monitor import (
    TicketRecord,
    count_tickets,
    count_tickets_for_demand,
    ticket_matrix,
    tickets_for_box,
)
from repro.tickets.policy import DEFAULT_THRESHOLDS, TicketPolicy

__all__ = [
    "BoxTicketStats",
    "CorrelationCdfs",
    "CostBreakdown",
    "Incident",
    "TicketCostModel",
    "fleet_incident_stats",
    "group_incidents",
    "incidents_for_box",
    "DEFAULT_THRESHOLDS",
    "FleetTicketSummary",
    "TicketPolicy",
    "TicketRecord",
    "correlation_cdfs",
    "count_tickets",
    "count_tickets_for_demand",
    "fleet_ticket_summary",
    "ticket_matrix",
    "tickets_for_box",
]
