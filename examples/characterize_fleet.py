#!/usr/bin/env python
"""Section II walkthrough: characterize usage tickets and spatial patterns.

Generates a one-day fleet and reproduces the paper's characterization
study: how many boxes ticket at the 60/70/80% thresholds, how concentrated
the tickets are (culprit VMs), and how strongly co-located series correlate
(the structure ATM exploits).  It also materializes individual ticket
events for one busy box, the way an operator would drill into them.

Run with:  python examples/characterize_fleet.py
"""

from repro.tickets import (
    DEFAULT_THRESHOLDS,
    TicketPolicy,
    correlation_cdfs,
    fleet_incident_stats,
    fleet_ticket_summary,
    tickets_for_box,
)
from repro.trace import FleetConfig, Resource, generate_fleet


def main() -> None:
    fleet = generate_fleet(FleetConfig(n_boxes=80, days=1, seed=11))
    print(f"fleet: {fleet.n_boxes} boxes / {fleet.n_vms} VMs, one day of "
          f"15-minute windows\n")

    summary = fleet_ticket_summary(fleet, DEFAULT_THRESHOLDS, first_windows=96)
    print("ticket characterization (cf. paper Fig. 2):")
    print(f"{'res':>5} {'thr%':>5} {'%boxes':>8} {'tickets/box':>12} {'culprits':>9}")
    for resource in (Resource.CPU, Resource.RAM):
        for threshold in DEFAULT_THRESHOLDS:
            row = summary.row(resource, threshold)
            print(
                f"{resource.value:>5} {threshold:>5.0f} {row['pct_boxes']:>8.1f} "
                f"{row['mean_tickets']:>12.1f} {row['mean_culprits']:>9.1f}"
            )

    cdfs = correlation_cdfs(fleet, first_windows=96)
    print("\nspatial correlation, mean of per-box medians (cf. Fig. 3):")
    for name, value in cdfs.means().items():
        print(f"  {name:12s} {value:+.3f}")

    # Triage view: correlated ticket storms collapse into incidents.
    policy = TicketPolicy(threshold_pct=60.0)
    incident_stats = fleet_incident_stats(fleet, policy)
    if incident_stats["incidents"]:
        print(
            f"\ntriage view: {incident_stats['tickets']} tickets collapse into "
            f"{incident_stats['incidents']} incidents "
            f"({incident_stats['tickets_per_incident']:.1f} tickets/incident; "
            f"{100 * incident_stats['spatial_incident_share']:.0f}% span multiple VMs)"
        )
    else:
        print("\ntriage view: no tickets, nothing to triage")

    # Drill into the busiest box the way a ticket queue would show it.
    busiest = max(
        fleet.boxes,
        key=lambda box: len(tickets_for_box(box, policy)),
    )
    events = tickets_for_box(busiest, policy)
    print(f"\nbusiest box {busiest.box_id}: {len(events)} tickets; first five:")
    for event in events[:5]:
        print(
            f"  window {event.window:3d}  {event.vm_id}  "
            f"{event.resource.value.upper()} at {event.usage_pct:.1f}%"
        )


if __name__ == "__main__":
    main()
