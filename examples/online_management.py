#!/usr/bin/env python
"""Online dynamic workload management — the paper's future work, realized.

Rolls the ATM controller day by day over a two-week trace: every day it
re-trains on the sliding 5-day window, predicts the next day, resizes, and
is scored against the static allocation.  The ticket savings are then
priced with the labor-cost model.

Run with:  python examples/online_management.py
"""

from repro.core import AtmConfig
from repro.core.online import run_online_fleet
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.tickets.costs import TicketCostModel
from repro.trace import FleetConfig, Resource, generate_fleet


def main() -> None:
    fleet = generate_fleet(FleetConfig(n_boxes=8, days=14, seed=23))
    config = AtmConfig.with_clustering(
        ClusteringMethod.CBC, temporal_model="seasonal_mean"
    )
    print(f"rolling ATM over {fleet.n_boxes} boxes x 14 days "
          f"(5-day sliding window, daily resize)\n")

    results = run_online_fleet(fleet, config, refit_every_steps=2)

    total_static = total_atm = 0
    print(f"{'box':>10} {'days':>5} {'static':>8} {'ATM':>6} {'cut %':>7} {'APE %':>7}")
    for box_id, result in sorted(results.items()):
        static = result.total_tickets(static=True)
        atm = result.total_tickets()
        total_static += static
        total_atm += atm
        days = len({s.day_index for s in result.steps})
        cut = result.reduction_percent()
        print(f"{box_id:>10} {days:>5} {static:>8} {atm:>6} "
              f"{cut:>7.1f} {result.mean_ape():>7.1f}")

    print(f"\nfleet total: {total_static} -> {total_atm} tickets")

    # Price it: one resize action per box, resource and day.
    n_days = 14 - 5
    actions = len(results) * 2 * n_days
    model = TicketCostModel()
    breakdown = model.savings(
        tickets_before=total_static,
        tickets_after=total_atm,
        resize_actions=actions,
    )
    print(
        f"labor economics (defaults: {model.cost_per_ticket:.0f}/ticket, "
        f"{model.cost_per_resize_action:.2f}/resize): "
        f"net savings {breakdown.net_savings:,.0f} "
        f"({breakdown.savings_percent:.0f}%) for {actions} resize actions"
    )

    # Per-resource view of one busy box.
    busiest = max(results.values(), key=lambda r: r.total_tickets(static=True))
    print(f"\nday-by-day on {busiest.box_id}:")
    for resource in (Resource.CPU, Resource.RAM):
        steps = busiest.steps_for(resource)
        series = " ".join(
            f"{s.tickets_static:>3}->{s.tickets_atm:<3}" for s in steps
        )
        print(f"  {resource.value}: {series}")


if __name__ == "__main__":
    main()
