#!/usr/bin/env python
"""Section V-B walkthrough: ATM on the simulated MediaWiki cluster.

Runs the two-deployment testbed (wiki-one: 4 Apache / 2 Memcached / 1
MySQL; wiki-two: 2 / 1 / 1) under alternating low/high load, once with the
operators' static CPU limits and once with ATM resizing every hour, then
prints the ticket counts, per-VM usage extremes, and application
performance — the data behind the paper's Figs. 12 and 13.

Run with:  python examples/mediawiki_resizing.py
"""

from repro.testbed import run_testbed_experiment
from repro.testbed.experiment import TestbedConfig


def main() -> None:
    cfg = TestbedConfig(duration_windows=24)  # 6 hours
    original = run_testbed_experiment(resizing=False, config=cfg)
    resized = run_testbed_experiment(resizing=True, config=cfg)

    print("CPU usage tickets over the experiment:")
    print(f"  original: {original.tickets():3d}   with ATM resizing: {resized.tickets():3d}")

    print("\nper-VM peak usage (percent of enforced limit):")
    print(f"{'vm':>16} {'orig max%':>10} {'resized max%':>13} {'final limit':>12}")
    for vm_id in sorted(original.usage_pct):
        print(
            f"{vm_id:>16} {original.usage_pct[vm_id].max():>10.1f} "
            f"{resized.usage_pct[vm_id].max():>13.1f} "
            f"{resized.limits[vm_id][-1]:>10.2f}G"
        )

    print("\napplication performance (request-weighted means):")
    for wiki in ("wiki-one", "wiki-two"):
        rt_o = 1000 * original.mean_response_time(wiki)
        rt_r = 1000 * resized.mean_response_time(wiki)
        tp_o = original.mean_throughput(wiki)
        tp_r = resized.mean_throughput(wiki)
        print(
            f"  {wiki}: RT {rt_o:6.0f} -> {rt_r:6.0f} ms   "
            f"TPUT {tp_o:6.1f} -> {tp_r:6.1f} req/s"
        )

    print("\nhourly cgroups CPU-limit trajectory of the wiki-two front-ends:")
    for vm_id in ("w2-apache-1", "w2-apache-2"):
        series = resized.limits[vm_id]
        print(f"  {vm_id}: " + " ".join(f"{v:.1f}" for v in series[::4]) + "  (GHz, hourly)")


if __name__ == "__main__":
    main()
