#!/usr/bin/env python
"""Quickstart: run ATM end-to-end on a small synthetic fleet.

Generates a 10-box fleet (5 training days + 1 evaluation day), runs the
full ATM pipeline — signature search, neural temporal models, spatial
reconstruction, greedy MCKP resizing — and prints prediction accuracy and
ticket reductions.

Run with:  python examples/quickstart.py
"""

from repro.core import AtmConfig, run_fleet_atm
from repro.resizing.evaluate import ResizingAlgorithm
from repro.trace import FleetConfig, Resource, generate_fleet


def main() -> None:
    fleet = generate_fleet(FleetConfig(n_boxes=10, days=6, seed=7))
    print(f"fleet: {fleet.n_boxes} boxes, {fleet.n_vms} VMs, "
          f"{fleet.n_series} usage series")

    result = run_fleet_atm(fleet, AtmConfig())

    print(f"\nsignature series kept: {100 * result.mean_signature_ratio():.0f}% "
          f"of all series (the rest are predicted spatially)")
    print(f"prediction APE: {result.mean_ape():.1f}% over all windows, "
          f"{result.mean_ape(peak=True):.1f}% on peak (ticket-relevant) windows")

    print("\nticket reduction with predicted demands:")
    for algorithm in ResizingAlgorithm:
        cpu = result.mean_reduction(Resource.CPU, algorithm)
        ram = result.mean_reduction(Resource.RAM, algorithm)
        print(f"  {algorithm.value:12s}  CPU {cpu:6.1f}%   RAM {ram:6.1f}%")


if __name__ == "__main__":
    main()
