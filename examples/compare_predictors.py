#!/usr/bin/env python
"""Compare temporal models and clustering variants on one box.

Shows the plug-in nature of ATM's temporal stage: every registered model
(seasonal baselines, AR, ARIMA, Holt-Winters, the neural network) forecasts
one box's demand series a day ahead, alone and inside the spatial-temporal
pipeline with DTW and CBC signature search.

Run with:  python examples/compare_predictors.py
"""

import time

import numpy as np

from repro.prediction import (
    SignatureSearchConfig,
    SpatialTemporalConfig,
    SpatialTemporalPredictor,
    available_temporal_models,
    make_temporal_model,
)
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.timeseries.metrics import mean_absolute_percentage_error
from repro.trace import FleetConfig, generate_box

TRAIN = 5 * 96
HORIZON = 96


def main() -> None:
    box = generate_box(0, FleetConfig(days=6, seed=5))
    demands = box.demand_matrix()
    train, actual = demands[:, :TRAIN], demands[:, TRAIN : TRAIN + HORIZON]
    print(f"box {box.box_id}: {box.n_vms} VMs -> {demands.shape[0]} demand series\n")

    print("temporal models, fitted per-series (mean APE %, wall seconds):")
    for name in available_temporal_models():
        start = time.perf_counter()
        apes = []
        for row_train, row_actual in zip(train, actual):
            forecast = make_temporal_model(name).fit(row_train).predict(HORIZON)
            ape = mean_absolute_percentage_error(row_actual, forecast)
            if np.isfinite(ape):
                apes.append(ape)
        elapsed = time.perf_counter() - start
        print(f"  {name:16s} APE {np.mean(apes):6.1f}%   {elapsed:6.2f}s")

    print("\nATM spatial-temporal pipeline (neural on signatures only):")
    for method in (ClusteringMethod.DTW, ClusteringMethod.CBC):
        start = time.perf_counter()
        predictor = SpatialTemporalPredictor(
            SpatialTemporalConfig(search=SignatureSearchConfig(method=method))
        )
        prediction = predictor.fit_predict(train, HORIZON)
        elapsed = time.perf_counter() - start
        apes = [
            mean_absolute_percentage_error(actual[i], prediction.predictions[i])
            for i in range(actual.shape[0])
        ]
        apes = [a for a in apes if np.isfinite(a)]
        print(
            f"  {method.value:4s}: {len(prediction.spatial.signature_indices)} signatures "
            f"({100 * prediction.signature_ratio:.0f}%), APE {np.mean(apes):.1f}%, "
            f"{elapsed:.2f}s"
        )


if __name__ == "__main__":
    main()
