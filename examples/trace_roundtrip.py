#!/usr/bin/env python
"""Persist a fleet trace to CSV and analyze it after reloading.

Demonstrates the on-disk interchange format: any monitoring export shaped
like the long CSV (box, vm, capacities, window, cpu%, ram%) can be loaded
with :func:`repro.trace.load_fleet_csv` and pushed through the identical
ATM pipeline that the synthetic fleets use.

Run with:  python examples/trace_roundtrip.py
"""

import tempfile
from pathlib import Path

from repro.resizing import evaluate_fleet_resizing
from repro.resizing.evaluate import ResizingAlgorithm
from repro.tickets import TicketPolicy
from repro.trace import FleetConfig, Resource, generate_fleet, load_fleet_csv, save_fleet_csv


def main() -> None:
    fleet = generate_fleet(FleetConfig(n_boxes=6, days=1, seed=3))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "fleet.csv"
        save_fleet_csv(fleet, path)
        size_kib = path.stat().st_size / 1024
        print(f"wrote {path.name}: {size_kib:.0f} KiB for "
              f"{fleet.n_vms} VMs x {fleet.boxes[0].n_windows} windows")

        reloaded = load_fleet_csv(path)
        print(f"reloaded: {reloaded.n_boxes} boxes, {reloaded.n_vms} VMs")

        # The reloaded trace drives the oracle resizing study directly.
        reduction = evaluate_fleet_resizing(
            reloaded,
            TicketPolicy(threshold_pct=60.0),
            (ResizingAlgorithm.ATM, ResizingAlgorithm.STINGY),
        )
        for algorithm in (ResizingAlgorithm.ATM, ResizingAlgorithm.STINGY):
            cpu = reduction.mean_reduction(Resource.CPU, algorithm)
            before, after = reduction.totals(Resource.CPU, algorithm)
            print(
                f"  {algorithm.value:8s} CPU reduction {cpu:7.1f}% "
                f"(fleet tickets {before} -> {after})"
            )


if __name__ == "__main__":
    main()
